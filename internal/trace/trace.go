// Package trace is the always-on flight recorder under the serving
// stack: fixed-size events recorded into per-domain ring buffers by the
// domain's single owner, published with the same plain-store/one-
// publication discipline as obs.Cell, and snapshotted walker-side with
// a seqlock-style validation — so recording adds zero RMW instructions
// and zero allocations to every hot path it instruments (guard-tested,
// like the rest of the observability layer; see DESIGN.md §13).
//
// # The ring
//
// A Ring is a power-of-two array of 4-word event slots plus one
// publication head. Every word — payload and head alike — is an
// atomic.Uint64 written with plain atomic stores (MOVs on amd64, not
// RMW instructions) so the race detector sees both sides of the
// walker/owner concurrency as synchronized, while the owner's cost per
// event stays five stores:
//
//	slot[head&mask] = {ts, span, stage|arg, aux}   // 4 stores
//	head            = head+1                       // 1 store, publishes
//
// The owner keeps its own plain mirror of head (it is the only
// writer), so there is no fetch-add anywhere: a Record is straight-line
// store code, no branches on shared mutable state beyond the fault
// probe.
//
// # Walker validation without per-slot sequence words
//
// A walker copies the window [h1-cap, h1) for h1 = head loaded before
// the copy, then re-loads head as h2 and discards every index i with
// i+cap ≤ h2. That discard rule is exactly the torn-slot condition:
// the owner overwrites index i's slot only while writing index i+cap,
// and it begins writing index i+cap only after publishing head = i+cap
// — so if any store of the overwrite was visible to the walker's copy,
// the walker's later head load (sequentially consistent, like all Go
// atomics) must observe head ≥ i+cap and the discard fires. Surviving
// events are bit-exact. This is the obs.Cell seqlock argument with the
// head doubling as the sequence word for the whole ring.
//
// # The span stamp
//
// Events carry a Span: the monotonic Now() stamp taken at the origin
// publication. The stamp rides the notify layer's existing WakeAt
// propagation (PR 9) down the gate cascade, so one logical publication
// threads publish → tree cascade → watcher wake → conflation decision
// → SSE flush across four single-writer domains and their four rings.
// The Tracer (tracer.go) groups the merged snapshot by Span and turns
// stage deltas (TS - Span) into per-stage latency histograms.
package trace

import (
	"sync/atomic"
	"time"
)

// clockBase anchors the recorder's monotonic nanosecond clock. The
// notify layer's wake stamps use the same clock (notify delegates
// here), so span stamps and event timestamps are directly comparable.
var clockBase = time.Now()

// Now returns monotonic nanoseconds since process start — the timebase
// of every event TS, span stamp and wake stamp. One nanotime read; no
// allocation, no RMW.
func Now() int64 { return int64(time.Since(clockBase)) }

// Stage identifies which pipeline stage recorded an event. The five
// stages of the publish→deliver span, in causal order.
type Stage uint8

const (
	// StageNone marks an invalid/zero event.
	StageNone Stage = iota
	// StagePublish: a register writer published a value. Recorded by
	// the owning writer (shard writer goroutine, or the (1,N) writer);
	// the event's Span is the stamp the publication was born with.
	StagePublish
	// StageCascade: the wakeup tree's root relay fanned the wake out to
	// its children. Recorded by the root relay goroutine.
	StageCascade
	// StageWake: a parked watcher unparked. Recorded by the watcher
	// goroutine inside the Await engine; Aux carries the wakeup latency
	// in nanoseconds.
	StageWake
	// StageConflate: the watcher's delivery decision. Arg is the number
	// of publications conflated (skipped forever) into this delivery;
	// Aux is the epoch frame delivered, or 0 for a spurious probe that
	// found nothing new.
	StageConflate
	// StageFlush: the serving layer flushed an SSE frame to the client
	// socket. Recorded by the connection goroutine; Aux is the frame
	// size in bytes.
	StageFlush

	// NumStages bounds the Stage enum (valid stages are 1..NumStages-1).
	NumStages
)

// String names the stage for timelines and metric labels.
func (s Stage) String() string {
	switch s {
	case StagePublish:
		return "publish"
	case StageCascade:
		return "cascade"
	case StageWake:
		return "wake"
	case StageConflate:
		return "conflate"
	case StageFlush:
		return "flush"
	}
	return "none"
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// TS is the recording time: monotonic nanoseconds on the Now clock.
	TS int64
	// Span is the origin publication's stamp (same clock), threading
	// this event into a publish→deliver span; 0 means unthreaded.
	Span int64
	// Stage is the pipeline stage that recorded the event.
	Stage Stage
	// Arg is a small stage-specific argument (see the Stage constants).
	Arg uint32
	// Aux is a stage-specific payload word (latency, epoch, bytes).
	Aux uint64
}

// eventWords is the slot width: TS, Span, Stage|Arg, Aux.
const eventWords = 4

// DefaultRingEvents is the per-domain ring capacity used when a
// configuration leaves it zero: 1024 events × 32 bytes = 32 KiB per
// ring, several seconds of history at steady-state publish rates.
const DefaultRingEvents = 1024

// Ring is one single-owner flight-recorder ring. Exactly one goroutine
// at a time may call Record (the domain's owner — handoff between
// owners must be ordered by other synchronization, e.g. the Tracer
// lane mutex); any number of goroutines may Snapshot concurrently.
// A nil *Ring is valid and records nothing, so call sites need no
// "tracing enabled?" branch beyond the nil test Record itself does.
type Ring struct {
	// words holds capacity slots of eventWords atomics. All access is
	// atomic on both sides (owner stores, walker loads) — plain MOVs,
	// never RMW — which is what keeps the pair race-clean.
	words []atomic.Uint64
	mask  uint64
	// head is the publication word: the count of fully recorded events.
	head atomic.Uint64
	// local mirrors head on the owner's side so Record never loads or
	// RMWs shared state to find its slot.
	local uint64
}

// NewRing allocates a ring holding capacity events, rounded up to a
// power of two (minimum 8).
func NewRing(capacity int) *Ring {
	n := 8
	for n < capacity {
		n <<= 1
	}
	return &Ring{
		words: make([]atomic.Uint64, n*eventWords),
		mask:  uint64(n - 1),
	}
}

// Cap reports the ring's event capacity.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.words) / eventWords
}

// Recorded reports the total number of events ever recorded (the
// publication head). Any goroutine.
func (r *Ring) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// Record appends one event stamped Now(). Owner goroutine only. Cost:
// one nanotime read plus five atomic stores (plain MOVs) and one
// disarmed fault probe — zero RMW instructions, zero allocations,
// nothing proportional to ring size or walker activity. A nil receiver
// records nothing.
func (r *Ring) Record(stage Stage, arg uint32, span int64, aux uint64) {
	if r == nil {
		return
	}
	h := r.local
	base := (h & r.mask) * eventWords
	r.words[base].Store(uint64(Now()))
	r.words[base+1].Store(uint64(span))
	r.words[base+2].Store(uint64(stage) | uint64(arg)<<32)
	r.words[base+3].Store(aux)
	r.local = h + 1
	// The publication window: a stall here leaves the event written but
	// unpublished — walkers must stay behind the old head. The chaos
	// scenarios stall exactly this window.
	faultRingPublish.Hit()
	r.head.Store(h + 1)
}

// Snapshot appends the ring's currently valid events to dst, oldest
// first, and returns the extended slice. Walker-side only (allocates
// when dst lacks capacity); safe under concurrent Record — events the
// owner may have been overwriting during the copy are discarded by the
// head re-validation, so every returned event is bit-exact. The
// validation is conservative by exactly one slot: a walker cannot tell
// an idle owner from one about to record event head+1, so once the
// ring has wrapped a snapshot holds at most Cap()-1 events — the one
// slot of headroom is the price of validating with the head alone
// instead of per-slot sequence words.
func (r *Ring) Snapshot(dst []Event) []Event {
	if r == nil {
		return dst
	}
	capU := uint64(len(r.words) / eventWords)
	h1 := r.head.Load()
	lo := uint64(0)
	if h1 > capU {
		lo = h1 - capU
	}
	start := len(dst)
	for i := lo; i < h1; i++ {
		base := (i & r.mask) * eventWords
		sa := r.words[base+2].Load()
		dst = append(dst, Event{
			TS:    int64(r.words[base].Load()),
			Span:  int64(r.words[base+1].Load()),
			Stage: Stage(sa & 0xff),
			Arg:   uint32(sa >> 32),
			Aux:   r.words[base+3].Load(),
		})
	}
	// Re-validate: the owner overwrites index i only while recording
	// index i+cap, and publishes head ≥ i+cap before touching that
	// slot's words again — so any index with i+cap ≤ h2 may be torn and
	// is dropped. Everything newer is bit-exact (see package comment).
	h2 := r.head.Load()
	if h2 > capU {
		keepFrom := h2 - capU + 1 // first index that cannot be torn
		if keepFrom > h1 {
			keepFrom = h1 // owner lapped the whole copy: keep nothing
		}
		if keepFrom > lo {
			n := copy(dst[start:], dst[start+int(keepFrom-lo):])
			dst = dst[:start+n]
		}
	}
	return dst
}
