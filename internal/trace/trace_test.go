package trace

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRingWraparound drives a ring several capacities past full and
// checks the snapshot is exactly the newest window, in order, bit-exact.
// A wrapped snapshot holds Cap()-1 events: the head-only validation
// gives up one slot of headroom (see Ring.Snapshot).
func TestRingWraparound(t *testing.T) {
	r := NewRing(16)
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", r.Cap())
	}
	const total = 3*16 + 5
	for i := 0; i < total; i++ {
		// Self-describing payload: every field is a function of i.
		r.Record(StagePublish, uint32(i), int64(2*i+1), uint64(3*i+7))
	}
	evs := r.Snapshot(nil)
	if len(evs) != 15 {
		t.Fatalf("snapshot has %d events, want 15 (cap-1)", len(evs))
	}
	for j, ev := range evs {
		i := total - 15 + j
		if ev.Arg != uint32(i) || ev.Span != int64(2*i+1) || ev.Aux != uint64(3*i+7) || ev.Stage != StagePublish {
			t.Fatalf("event %d = %+v, want index %d payload", j, ev, i)
		}
	}
	// TS must be monotone nondecreasing within the window.
	for j := 1; j < len(evs); j++ {
		if evs[j].TS < evs[j-1].TS {
			t.Fatalf("TS regressed at %d: %d after %d", j, evs[j].TS, evs[j-1].TS)
		}
	}
	if got := r.Recorded(); got != total {
		t.Fatalf("Recorded = %d, want %d", got, total)
	}
}

// TestRingSnapshotUnderFill checks a partially filled ring returns
// exactly what was recorded.
func TestRingSnapshotUnderFill(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 10; i++ {
		r.Record(StageWake, 0, int64(i+1), uint64(i))
	}
	evs := r.Snapshot(nil)
	if len(evs) != 10 {
		t.Fatalf("snapshot has %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Span != int64(i+1) || ev.Aux != uint64(i) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

// TestNilRing checks the nil receiver contract every call site relies
// on: record and snapshot are no-ops.
func TestNilRing(t *testing.T) {
	var r *Ring
	r.Record(StagePublish, 1, 2, 3) // must not panic
	if got := r.Snapshot(nil); got != nil {
		t.Fatalf("nil ring snapshot = %v", got)
	}
	if r.Cap() != 0 || r.Recorded() != 0 {
		t.Fatal("nil ring reports capacity or events")
	}
}

// TestRingConcurrentWalkerVsOwner is the seqlock-validation test: one
// owner records self-checking payloads flat out while walkers snapshot
// continuously; every event any walker returns must be internally
// consistent (all fields derived from the same index) — a torn slot
// that survived validation shows up as a field mismatch. Run under
// -race this also proves the atomic-on-both-sides discipline.
func TestRingConcurrentWalkerVsOwner(t *testing.T) {
	r := NewRing(32)
	var stop atomic.Bool
	var ownerWG sync.WaitGroup

	ownerWG.Add(1)
	go func() {
		defer ownerWG.Done()
		for i := uint64(1); !stop.Load(); i++ {
			// span = 2i+1 (never 0), arg = low 32 bits, aux = i*3.
			r.Record(StageConflate, uint32(i), int64(2*i+1), i*3)
		}
	}()

	const walkers = 3
	errs := make(chan string, walkers)
	var walkerWG sync.WaitGroup
	for w := 0; w < walkers; w++ {
		walkerWG.Add(1)
		go func() {
			defer walkerWG.Done()
			var buf []Event
			for k := 0; k < 2000; k++ {
				buf = r.Snapshot(buf[:0])
				var prev uint64
				for _, ev := range buf {
					i := uint64(ev.Span-1) / 2
					if ev.Span != int64(2*i+1) || ev.Arg != uint32(i) || ev.Aux != i*3 || ev.Stage != StageConflate {
						errs <- "torn event survived validation"
						return
					}
					if prev != 0 && i != prev+1 {
						errs <- "indices not contiguous within a snapshot"
						return
					}
					prev = i
				}
			}
		}()
	}
	walkerWG.Wait()
	stop.Store(true)
	ownerWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestTracerSpanReconstruction records a synthetic publish→flush span
// across separate rings and checks Spans stitches it back together.
func TestTracerSpanReconstruction(t *testing.T) {
	tr := New(Config{RingEvents: 64})
	shard := tr.Ring("shard-0")
	fan := tr.Ring("fan-root")
	lane, release := tr.AcquireLane()
	defer release()
	if lane == nil {
		t.Fatal("AcquireLane returned nil under the pool bound")
	}

	stamp := Now()
	shard.Record(StagePublish, 0, stamp, 1)
	fan.Record(StageCascade, 0, stamp, 0)
	lane.Record(StageWake, 0, stamp, 123)
	lane.Record(StageConflate, 2, stamp, 5)
	lane.Record(StageFlush, 0, stamp, 64)
	// A second, unrelated span plus an unthreaded event.
	stamp2 := Now()
	shard.Record(StagePublish, 0, stamp2, 2)
	shard.Record(StagePublish, 0, 0, 3) // unthreaded: excluded from spans

	spans := tr.Spans(0)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	sp := spans[0]
	if sp.Stamp != stamp {
		t.Fatalf("span stamp = %d, want %d", sp.Stamp, stamp)
	}
	want := []Stage{StagePublish, StageCascade, StageWake, StageConflate, StageFlush}
	if len(sp.Events) != len(want) {
		t.Fatalf("span has %d events, want %d: %+v", len(sp.Events), len(want), sp.Events)
	}
	for i, st := range want {
		if sp.Events[i].Stage != st {
			t.Fatalf("event %d stage = %s, want %s", i, sp.Events[i].Stage, st)
		}
		if i > 0 && sp.Events[i].TS < sp.Events[i-1].TS {
			t.Fatalf("span TS not monotone at %d", i)
		}
	}
	if ev, ok := sp.Stage(StageFlush); !ok || ev.Aux != 64 {
		t.Fatalf("flush lookup = %+v, %v", ev, ok)
	}

	bd := tr.Breakdown()
	if bd.ConflateDrops != 2 {
		t.Fatalf("ConflateDrops = %d, want 2", bd.ConflateDrops)
	}
	if bd.Count[StagePublish] != 3 || bd.Count[StageFlush] != 1 {
		t.Fatalf("stage counts = %v", bd.Count)
	}

	// Spans(1) keeps only the newest.
	if got := tr.Spans(1); len(got) != 1 || got[0].Stamp != stamp2 {
		t.Fatalf("Spans(1) = %+v", got)
	}

	// The render paths must mention every stage.
	var text, js strings.Builder
	tr.WriteText(&text, 0)
	tr.WriteJSON(&js, 0)
	for _, st := range want {
		if !strings.Contains(text.String(), st.String()) {
			t.Fatalf("text timeline missing %s:\n%s", st, text.String())
		}
		if !strings.Contains(js.String(), st.String()) {
			t.Fatalf("json dump missing %s:\n%s", st, js.String())
		}
	}
	if !strings.HasPrefix(js.String(), `{"spans":[`) {
		t.Fatalf("json dump malformed: %s", js.String())
	}
}

// TestTracerLanePool checks the lane pool bounds, reuses, and degrades
// to untraced (nil ring) instead of growing without bound.
func TestTracerLanePool(t *testing.T) {
	tr := New(Config{RingEvents: 8, Lanes: 2})
	a, releaseA := tr.AcquireLane()
	b, _ := tr.AcquireLane()
	if a == nil || b == nil || a == b {
		t.Fatal("first two lanes should be distinct rings")
	}
	c, releaseC := tr.AcquireLane()
	if c != nil {
		t.Fatal("third lane should be nil at bound 2")
	}
	releaseC() // must be safe on a nil lane
	releaseA()
	releaseA() // double release must be idempotent
	d, _ := tr.AcquireLane()
	if d != a {
		t.Fatal("released lane should be reused")
	}
}

// TestNilTracer checks the nil-tracer contract: accessors degrade,
// nothing panics.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if r := tr.Ring("x"); r != nil {
		t.Fatal("nil tracer returned a ring")
	}
	lane, release := tr.AcquireLane()
	release()
	if lane != nil {
		t.Fatal("nil tracer returned a lane")
	}
	if evs := tr.Events(); evs != nil {
		t.Fatal("nil tracer returned events")
	}
	if sn := tr.Stats(); sn.Name != "trace" {
		t.Fatalf("nil tracer stats = %+v", sn)
	}
}
