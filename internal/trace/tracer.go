package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"arcreg/internal/metrics"
	"arcreg/internal/obs"
)

// DefaultLanes bounds the watcher-lane pool (see Tracer.AcquireLane)
// when a configuration leaves it zero.
const DefaultLanes = 64

// Config parametrizes a Tracer.
type Config struct {
	// RingEvents is the per-ring event capacity, rounded up to a power
	// of two (default DefaultRingEvents).
	RingEvents int
	// Lanes bounds the watcher-lane pool: the maximum number of
	// concurrently traced watcher/connection domains (default
	// DefaultLanes). Watchers beyond the bound run untraced.
	Lanes int
}

// Tracer owns a set of named flight-recorder rings — one per
// single-writer domain — and reconstructs their merged snapshot into
// spans and per-stage latency breakdowns, walker-side. Creating rings
// and acquiring lanes are wiring-time operations under a mutex; the
// rings themselves stay wait-free to record into. A nil *Tracer is
// valid: every method degrades to "tracing disabled".
type Tracer struct {
	ringEvents int
	maxLanes   int

	mu    sync.Mutex
	rings []namedRing
	lanes []laneState
}

type namedRing struct {
	name string
	ring *Ring
}

type laneState struct {
	ring *Ring
	busy bool
}

// New constructs a Tracer.
func New(cfg Config) *Tracer {
	if cfg.RingEvents <= 0 {
		cfg.RingEvents = DefaultRingEvents
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = DefaultLanes
	}
	return &Tracer{ringEvents: cfg.RingEvents, maxLanes: cfg.Lanes}
}

// Ring creates and registers a named domain ring (shard writers, tree
// relays — domains fixed at wiring time). Duplicate names are allowed;
// walkers see both. A nil Tracer returns a nil ring, which records
// nothing.
func (t *Tracer) Ring(name string) *Ring {
	if t == nil {
		return nil
	}
	r := NewRing(t.ringEvents)
	t.mu.Lock()
	t.rings = append(t.rings, namedRing{name: name, ring: r})
	t.mu.Unlock()
	return r
}

// AcquireLane borrows a ring for a transient single-writer domain — a
// watcher iteration, an SSE connection. Lanes are pooled and reused:
// a released lane keeps its recorded history (spans from finished
// streams stay visible until overwritten) and its next owner appends
// after it; the acquire/release mutex orders the owner handoff. When
// all lanes are busy and the pool is at its bound, AcquireLane returns
// a nil ring — that domain runs untraced — and release is still safe
// to call. A nil Tracer returns (nil, no-op).
func (t *Tracer) AcquireLane() (ring *Ring, release func()) {
	if t == nil {
		return nil, func() {}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := -1
	for i := range t.lanes {
		if !t.lanes[i].busy {
			idx = i
			break
		}
	}
	if idx < 0 {
		if len(t.lanes) >= t.maxLanes {
			return nil, func() {}
		}
		r := NewRing(t.ringEvents)
		t.lanes = append(t.lanes, laneState{ring: r})
		t.rings = append(t.rings, namedRing{name: "lane-" + strconv.Itoa(len(t.lanes)-1), ring: r})
		idx = len(t.lanes) - 1
	}
	t.lanes[idx].busy = true
	lane := t.lanes[idx].ring
	var once sync.Once
	return lane, func() {
		once.Do(func() {
			t.mu.Lock()
			t.lanes[idx].busy = false
			t.mu.Unlock()
		})
	}
}

// SpanEvent is one merged-snapshot event, labeled with the ring it was
// recorded into.
type SpanEvent struct {
	Ring string
	Event
}

// Events returns a merged snapshot of every ring, sorted by TS.
// Walker-side (allocates); safe under live recording.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	rings := make([]namedRing, len(t.rings))
	copy(rings, t.rings)
	t.mu.Unlock()
	var out []SpanEvent
	var scratch []Event
	for _, nr := range rings {
		scratch = nr.ring.Snapshot(scratch[:0])
		for _, ev := range scratch {
			out = append(out, SpanEvent{Ring: nr.name, Event: ev})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Span is one reconstructed publish→deliver span: every event sharing
// one origin publication stamp, in TS order.
type Span struct {
	// Stamp is the origin publication's Now() stamp — the span ID.
	Stamp int64
	// Events are the span's events in TS order.
	Events []SpanEvent
}

// Stage returns the span's first event of the given stage.
func (s Span) Stage(st Stage) (SpanEvent, bool) {
	for _, ev := range s.Events {
		if ev.Stage == st {
			return ev, true
		}
	}
	return SpanEvent{}, false
}

// Stages reports which stages the span has events for, as a bitmask
// indexed by Stage.
func (s Span) Stages() uint32 {
	var m uint32
	for _, ev := range s.Events {
		m |= 1 << ev.Stage
	}
	return m
}

// Spans groups the merged snapshot by span stamp, oldest span first,
// keeping at most max spans (the newest ones; max ≤ 0 means all).
// Unthreaded events (Span == 0) are excluded.
func (t *Tracer) Spans(max int) []Span {
	events := t.Events()
	byStamp := make(map[int64]*Span)
	var order []int64
	for _, ev := range events {
		if ev.Span == 0 {
			continue
		}
		sp := byStamp[ev.Span]
		if sp == nil {
			sp = &Span{Stamp: ev.Span}
			byStamp[ev.Span] = sp
			order = append(order, ev.Span)
		}
		sp.Events = append(sp.Events, ev)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	if max > 0 && len(order) > max {
		order = order[len(order)-max:]
	}
	out := make([]Span, 0, len(order))
	for _, stamp := range order {
		out = append(out, *byStamp[stamp])
	}
	return out
}

// Breakdown is the walker-built per-stage latency decomposition of the
// current snapshot: for every threaded event, TS - Span is the time
// from origin publication to that stage.
type Breakdown struct {
	// Count and Latency are indexed by Stage.
	Count   [NumStages]uint64
	Latency [NumStages]metrics.Histogram
	// ConflateDrops sums the publications conflated away at delivery
	// decisions (StageConflate Arg) across the snapshot.
	ConflateDrops uint64
}

// Breakdown computes the per-stage latency breakdown of the current
// merged snapshot. Note the window: rings hold the last Cap() events
// per domain, so the breakdown describes recent traffic, not the full
// run.
func (t *Tracer) Breakdown() Breakdown {
	var b Breakdown
	for _, ev := range t.Events() {
		if ev.Stage == StageNone || ev.Stage >= NumStages {
			continue
		}
		b.Count[ev.Stage]++
		if ev.Span != 0 && ev.TS >= ev.Span {
			b.Latency[ev.Stage].Record(uint64(ev.TS - ev.Span))
		}
		if ev.Stage == StageConflate {
			b.ConflateDrops += uint64(ev.Arg)
		}
	}
	return b
}

// Stats renders the tracer as a Stats-tree node: ring inventory, event
// totals, and the per-stage counts and latency histograms of the
// current snapshot.
func (t *Tracer) Stats() obs.Snapshot {
	sn := obs.Snapshot{Name: "trace"}
	if t == nil {
		return sn
	}
	t.mu.Lock()
	nrings := uint64(len(t.rings))
	nlanes := uint64(len(t.lanes))
	var recorded uint64
	for _, nr := range t.rings {
		recorded += nr.ring.Recorded()
	}
	t.mu.Unlock()
	sn.Put("rings", nrings)
	sn.Put("lanes", nlanes)
	sn.Put("recorded", recorded)
	b := t.Breakdown()
	sn.Put("conflate_drops", b.ConflateDrops)
	for st := StagePublish; st < NumStages; st++ {
		child := obs.Snapshot{Name: "stage_" + st.String()}
		child.Put("events", b.Count[st])
		if b.Latency[st].Count() > 0 {
			child.PutHist("latency", b.Latency[st])
		}
		sn.Children = append(sn.Children, child)
	}
	return sn
}

// WriteJSON renders the span dump as JSON: the newest maxSpans spans
// (≤ 0 for all), each with its stage events, plus the per-stage
// summary. Hand-encoded for deterministic field order, like obs.JSON.
func (t *Tracer) WriteJSON(w io.Writer, maxSpans int) {
	var b strings.Builder
	b.WriteString(`{"spans":[`)
	for i, sp := range t.Spans(maxSpans) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"stamp":%d,"events":[`, sp.Stamp)
		for j, ev := range sp.Events {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `{"ring":%q,"stage":%q,"ts":%d,"offset_ns":%d,"arg":%d,"aux":%d}`,
				ev.Ring, ev.Stage.String(), ev.TS, ev.TS-sp.Stamp, ev.Arg, ev.Aux)
		}
		b.WriteString("]}")
	}
	b.WriteString(`],"stages":{`)
	bd := t.Breakdown()
	first := true
	for st := StagePublish; st < NumStages; st++ {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, `%q:{"events":%d`, st.String(), bd.Count[st])
		if h := &bd.Latency[st]; h.Count() > 0 {
			fmt.Fprintf(&b, `,"p50_ns":%.0f,"p99_ns":%.0f,"max_ns":%d`,
				h.Quantile(0.5), h.Quantile(0.99), h.Max())
		}
		b.WriteByte('}')
	}
	fmt.Fprintf(&b, `},"conflate_drops":%d}`, bd.ConflateDrops)
	b.WriteByte('\n')
	io.WriteString(w, b.String())
}

// WriteText renders a human-readable timeline: the newest maxSpans
// spans (≤ 0 for all), one line per event with its offset from the
// origin publication, followed by the per-stage summary.
func (t *Tracer) WriteText(w io.Writer, maxSpans int) {
	spans := t.Spans(maxSpans)
	for _, sp := range spans {
		fmt.Fprintf(w, "span %d\n", sp.Stamp)
		for _, ev := range sp.Events {
			fmt.Fprintf(w, "  +%-12s %-8s ring=%s", metrics.Duration(float64(ev.TS-sp.Stamp)), ev.Stage, ev.Ring)
			switch ev.Stage {
			case StageWake:
				fmt.Fprintf(w, " latency=%s", metrics.Duration(float64(ev.Aux)))
			case StageConflate:
				fmt.Fprintf(w, " drops=%d epoch=%d", ev.Arg, ev.Aux)
			case StageFlush:
				fmt.Fprintf(w, " bytes=%d", ev.Aux)
			}
			fmt.Fprintln(w)
		}
	}
	bd := t.Breakdown()
	fmt.Fprintf(w, "stages (last %d spans shown, window = ring capacity):\n", len(spans))
	for st := StagePublish; st < NumStages; st++ {
		h := &bd.Latency[st]
		fmt.Fprintf(w, "  %-8s events=%-8d", st, bd.Count[st])
		if h.Count() > 0 {
			fmt.Fprintf(w, " p50=%s p99=%s max=%s",
				metrics.Duration(h.Quantile(0.5)), metrics.Duration(h.Quantile(0.99)),
				metrics.Duration(float64(h.Max())))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  conflate_drops=%d\n", bd.ConflateDrops)
}
