package trace

import "arcreg/internal/fault"

// FaultRingPublish is the recorder's one injection point, hit between
// an event's payload stores and its head publication — the window the
// walker's head re-validation exists to survive. A stall here freezes a
// ring with a fully written but unpublished event while walkers keep
// snapshotting; yields shake out ordering assumptions between the
// payload and the publication. Never a crash point: the recorder sits
// inside publish paths whose callers hold publication windows open.
const FaultRingPublish = "trace/ring-publish"

var faultRingPublish = fault.NewPoint(FaultRingPublish, fault.CanYield|fault.CanStall)
