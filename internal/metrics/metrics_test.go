package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestThroughputMops(t *testing.T) {
	tp := Throughput{Ops: 2_000_000, Elapsed: time.Second}
	if got := tp.Mops(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("Mops = %v, want 2", got)
	}
	if (Throughput{Ops: 5, Elapsed: 0}).Mops() != 0 {
		t.Fatal("zero elapsed must yield zero rate")
	}
	if !strings.Contains(tp.String(), "Mops/s") {
		t.Fatalf("String() = %q", tp.String())
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
		{math.MaxUint64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram not empty")
	}
	for _, ns := range []uint64{100, 200, 300, 400} {
		h.Record(ns)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 100 || h.Max() != 400 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-250) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 10000; i++ {
		h.Record(i)
	}
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %v = %v < previous %v", q, v, prev)
		}
		prev = v
	}
	// p50 of 1..10000 should land near 5000 within a power-of-two bucket.
	p50 := h.Quantile(0.5)
	if p50 < 2048 || p50 > 16384 {
		t.Fatalf("p50 = %v grossly off", p50)
	}
	if h.Quantile(0) != float64(h.Min()) {
		t.Fatal("q=0 must be min")
	}
	if h.Quantile(1) != float64(h.Max()) {
		t.Fatal("q=1 must be max")
	}
}

func TestRecordSince(t *testing.T) {
	var h Histogram
	h.RecordSince(100, 400)
	if h.Count() != 1 || h.Max() != 300 {
		t.Fatalf("RecordSince: count=%d max=%d", h.Count(), h.Max())
	}
	h.RecordSince(400, 100) // clock anomaly: clamp to 0, never panic
	if h.Count() != 2 || h.Min() != 0 {
		t.Fatalf("backwards clock mishandled: %v", h.String())
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	var m Histogram
	m.Merge(&a)
	m.Merge(&b)
	if m.Count() != 200 {
		t.Fatalf("merged count = %d", m.Count())
	}
	if m.Min() != 10 || m.Max() != 1000 {
		t.Fatalf("merged min/max = %d/%d", m.Min(), m.Max())
	}
	var empty Histogram
	m.Merge(&empty) // no-op
	if m.Count() != 200 {
		t.Fatal("merging empty changed count")
	}
	// Merge into empty preserves min.
	var m2 Histogram
	m2.Merge(&b)
	if m2.Min() != 1000 {
		t.Fatalf("min after merge into empty = %d", m2.Min())
	}
}

// Property: mean is always within [min, max], quantiles within [min, max·2)
// (bucket interpolation can overshoot max within its bucket).
func TestHistogramBoundsQuick(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		for _, s := range samples {
			h.Record(uint64(s))
		}
		mean := h.Mean()
		if mean < float64(h.Min()) || mean > float64(h.Max()) {
			return false
		}
		for _, q := range []float64{0.1, 0.5, 0.9} {
			v := h.Quantile(q)
			if v < float64(h.Min())/2 || v > float64(h.Max())*2+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if h.String() != "no samples" {
		t.Fatalf("empty String() = %q", h.String())
	}
	h.Record(5000)
	for _, want := range []string{"n=1", "mean=", "p99="} {
		if !strings.Contains(h.String(), want) {
			t.Fatalf("String() = %q missing %q", h.String(), want)
		}
	}
}

func TestDurationHelper(t *testing.T) {
	if Duration(1.5e9) != 1500*time.Millisecond {
		t.Fatalf("Duration(1.5e9) = %v", Duration(1.5e9))
	}
}
