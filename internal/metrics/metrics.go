// Package metrics aggregates the measurements the benchmark harness
// reports: operation throughput (the paper's Mops/s axis), log-bucketed
// latency histograms, and the RMW-instruction accounting used to verify
// the paper's synchronization-economy claims.
//
// Hot-path discipline: workers count into plain per-goroutine structs
// (no atomics, no locks, no allocation); aggregation happens after the
// measurement window, once the workers have quiesced. Measuring a
// synchronization algorithm with synchronized counters would perturb the
// very contention under study.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Throughput expresses an operation rate.
type Throughput struct {
	Ops     uint64
	Elapsed time.Duration
}

// Mops returns millions of operations per second, the unit of every
// figure in the paper.
func (t Throughput) Mops() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Ops) / t.Elapsed.Seconds() / 1e6
}

// String implements fmt.Stringer.
func (t Throughput) String() string {
	return fmt.Sprintf("%.2f Mops/s (%d ops in %v)", t.Mops(), t.Ops, t.Elapsed)
}

// histBuckets is the number of power-of-two latency buckets: bucket i
// holds samples in [2^i, 2^(i+1)) nanoseconds, covering 1ns to ~18s.
const histBuckets = 35

// NumBuckets is the bucket count, exported so live mirrors
// (internal/obs) can shadow a Histogram word for word.
const NumBuckets = histBuckets

// Histogram is a log₂-bucketed latency histogram. The zero value is ready
// to use. Record is wait-free and allocation-free; one histogram belongs
// to one goroutine until merged.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Record adds one sample, in nanoseconds.
func (h *Histogram) Record(ns uint64) {
	i := bucketOf(ns)
	h.buckets[i]++
	h.count++
	h.sum += ns
	if h.count == 1 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// RecordSince is a convenience for Record(now-start) on a monotonic
// nanosecond clock.
func (h *Histogram) RecordSince(startNs, nowNs int64) {
	if nowNs > startNs {
		h.Record(uint64(nowNs - startNs))
	} else {
		h.Record(0)
	}
}

func bucketOf(ns uint64) int {
	if ns == 0 {
		return 0
	}
	i := bits.Len64(ns) - 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// BucketIndex returns the bucket a sample of ns nanoseconds lands in.
func BucketIndex(ns uint64) int { return bucketOf(ns) }

// Bucket returns the sample count of bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Sum reports the total of all samples in nanoseconds.
func (h *Histogram) Sum() uint64 { return h.sum }

// Restore rebuilds a Histogram from previously exported words — the
// inverse of reading it out bucket by bucket. Used by live mirrors to
// materialize a point-in-time copy from atomically published words.
func Restore(buckets [NumBuckets]uint64, count, sum, min, max uint64) Histogram {
	return Histogram{buckets: buckets, count: count, sum: sum, min: min, max: max}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the average sample in nanoseconds.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min reports the smallest sample.
func (h *Histogram) Min() uint64 { return h.min }

// Max reports the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in nanoseconds. Within a
// bucket the estimate interpolates geometrically — adequate for the
// factor-level comparisons the paper draws.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.min)
	}
	if q >= 1 {
		return float64(h.max)
	}
	target := q * float64(h.count)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := math.Exp2(float64(i))
			hi := math.Exp2(float64(i + 1))
			frac := (target - cum) / float64(c)
			est := lo + (hi-lo)*frac
			// Clamp: interpolation must not escape the observed range.
			if est > float64(h.max) {
				est = float64(h.max)
			}
			if est < float64(h.min) {
				est = float64(h.min)
			}
			return est
		}
		cum = next
	}
	return float64(h.max)
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%.0fns p50=%.0fns p99=%.0fns max=%dns",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.max)
}

// Duration formats a nanosecond quantity as a time.Duration.
func Duration(ns float64) time.Duration { return time.Duration(ns) }
