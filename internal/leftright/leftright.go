// Package leftright implements the Left-Right multi-word (1,N) register
// (Ramalhete & Correia, 2013) — the modern technique closest in spirit to
// ARC, included as an extension baseline beyond the paper's comparison
// set.
//
// Two full instances of the value exist. Readers are wait-free and
// population-oblivious: they announce presence on one of two anonymous
// version counters (an arrive/depart pair per version — compare ARC's
// anonymous presence counter), read the instance named by the leftRight
// word, and depart. The writer updates the instance readers are NOT on,
// flips leftRight, then toggles the version index and waits for the
// retired version's readers to drain before mirroring the update into the
// second instance.
//
// Properties, in the paper's terms:
//
//   - Reads: wait-free, constant time, zero-copy views supported (a view
//     pins its version until the handle's next operation, exactly like an
//     ARC slot pin).
//   - Writes: NOT wait-free — the writer blocks until readers drain, so a
//     preempted or stalled reader stalls the writer (ARC's writer, by
//     contrast, just avoids the pinned slot). This is the structural
//     trade the paper's N+2-slot design eliminates.
//   - Space: exactly 2 instances regardless of N (below ARC's N+2), the
//     other side of the same trade.
//   - Each value is written twice (once per instance) — a copy overhead
//     ARC avoids.
package leftright

import (
	"fmt"
	"sync"

	"arcreg/internal/membuf"
	"arcreg/internal/pad"
	"arcreg/internal/register"
)

// MaxReaders is administrative; readers are anonymous.
const MaxReaders = 1 << 20

// Register is the Left-Right (1,N) register.
type Register struct {
	// leftRight names the instance readers should use (0 or 1).
	leftRight pad.PaddedUint64
	// versionIndex names the indicator new readers arrive on.
	versionIndex pad.PaddedUint64
	// arrivals/departures form the two anonymous read indicators.
	arrivals   [2]pad.PaddedUint64
	departures [2]pad.PaddedUint64

	inst  [2][]byte
	sizes [2]int

	maxReaders   int
	maxValueSize int
	wstats       register.WriteStats

	mu          sync.Mutex
	liveReaders int
}

var (
	_ register.Register   = (*Register)(nil)
	_ register.Writer     = (*Register)(nil)
	_ register.StatWriter = (*Register)(nil)
	_ register.Reader     = (*Reader)(nil)
	_ register.Viewer     = (*Reader)(nil)
	_ register.StatReader = (*Reader)(nil)
)

// New constructs a Left-Right register.
func New(cfg register.Config) (*Register, error) {
	if err := cfg.Validate(MaxReaders); err != nil {
		return nil, err
	}
	initial := cfg.InitialOrDefault()
	if cfg.MaxValueSize < len(initial) {
		cfg.MaxValueSize = len(initial)
	}
	r := &Register{
		maxReaders:   cfg.MaxReaders,
		maxValueSize: cfg.MaxValueSize,
	}
	for i := range r.inst {
		r.inst[i] = membuf.Aligned(cfg.MaxValueSize)
		r.sizes[i] = copy(r.inst[i], initial)
	}
	return r, nil
}

// Name implements register.Register.
func (r *Register) Name() string { return "leftright" }

// Caps implements register.CapabilityReporter: Left-Right reads are
// wait-free with zero-copy views, but writes block until reader
// versions drain.
func (r *Register) Caps() register.Caps {
	return register.Caps{
		ZeroCopyView: true,
		ReadStats:    true,
		WriteStats:   true,
		WaitFreeRead: true,
	}
}

// MaxReaders implements register.Register.
func (r *Register) MaxReaders() int { return r.maxReaders }

// MaxValueSize implements register.Register.
func (r *Register) MaxValueSize() int { return r.maxValueSize }

// Writer implements register.Register.
func (r *Register) Writer() register.Writer { return r }

// WriteStats implements register.StatWriter. LockSpins counts drain-wait
// rounds — the blocking component of Left-Right writes.
func (r *Register) WriteStats() register.WriteStats { return r.wstats }

// Write publishes a new value into both instances. Blocking: between the
// two instance updates the writer waits for the retired version's readers
// to drain.
func (r *Register) Write(p []byte) error {
	if len(p) > r.maxValueSize {
		return fmt.Errorf("%w: %d > %d", register.ErrValueTooLarge, len(p), r.maxValueSize)
	}
	// Update the instance readers are not directed to.
	lr := r.leftRight.Load()
	next := 1 - lr
	r.sizes[next] = copy(r.inst[next], p)
	r.leftRight.Store(next) // new readers go to the fresh instance

	// Toggle the version index and drain both indicators so nobody can
	// still be reading the old instance, then mirror the update into it.
	vi := r.versionIndex.Load()
	nvi := 1 - vi
	r.drain(nvi) // readers still on the *next* version from 2 toggles ago
	r.versionIndex.Store(nvi)
	r.drain(vi) // readers that arrived on the retired version

	r.sizes[lr] = copy(r.inst[lr], p)
	r.wstats.Ops++
	return nil
}

// drain spins until indicator vi is empty (arrivals == departures).
func (r *Register) drain(vi uint64) {
	var b pad.Backoff
	for {
		dep := r.departures[vi].Load()
		arr := r.arrivals[vi].Load()
		if arr == dep {
			return
		}
		r.wstats.LockSpins++
		b.Wait()
	}
}

// Reader is a per-goroutine read endpoint.
type Reader struct {
	reg    *Register
	pinned bool
	vi     uint64 // version indicator this handle arrived on
	closed bool
	stats  register.ReadStats
}

// NewReader implements register.Register.
func (r *Register) NewReader() (register.Reader, error) {
	rd, err := r.newReader()
	if err != nil {
		return nil, err
	}
	return rd, nil
}

// NewReaderHandle is the concrete-typed variant of NewReader.
func (r *Register) NewReaderHandle() (*Reader, error) { return r.newReader() }

func (r *Register) newReader() (*Reader, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.liveReaders >= r.maxReaders {
		return nil, register.ErrTooManyReaders
	}
	r.liveReaders++
	return &Reader{reg: r}, nil
}

// LiveReaders reports open handles.
func (r *Register) LiveReaders() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveReaders
}

// ReadStats implements register.StatReader.
func (rd *Reader) ReadStats() register.ReadStats { return rd.stats }

// arrive registers presence on the current version and returns the
// instance to read.
func (rd *Reader) arrive() []byte {
	reg := rd.reg
	vi := reg.versionIndex.Load()
	reg.arrivals[vi].Add(1)
	rd.stats.RMW++
	rd.vi = vi
	rd.pinned = true
	lr := reg.leftRight.Load()
	return reg.inst[lr][:reg.sizes[lr]]
}

// depart releases the pinned version, if any.
func (rd *Reader) depart() {
	if rd.pinned {
		rd.reg.departures[rd.vi].Add(1)
		rd.stats.RMW++
		rd.pinned = false
	}
}

// View returns the freshest value without copying. The view pins this
// handle's version until its next View, Read or Close; while pinned, the
// writer cannot complete (Left-Right's structural cost — contrast ARC,
// whose writer simply avoids the pinned slot).
func (rd *Reader) View() ([]byte, error) {
	if rd.closed {
		return nil, register.ErrReaderClosed
	}
	rd.depart()
	v := rd.arrive()
	rd.stats.Ops++
	return v, nil
}

// Read copies the freshest value into dst, arriving and departing within
// the call (the classical Left-Right read shape).
func (rd *Reader) Read(dst []byte) (int, error) {
	if rd.closed {
		return 0, register.ErrReaderClosed
	}
	rd.depart()
	v := rd.arrive()
	if len(dst) < len(v) {
		size := len(v)
		rd.depart()
		return size, register.ErrBufferTooSmall
	}
	n := copy(dst, v)
	rd.depart()
	rd.stats.Ops++
	return n, nil
}

// Close releases any pinned version and the handle.
func (rd *Reader) Close() error {
	if rd.closed {
		return register.ErrReaderClosed
	}
	rd.depart()
	rd.closed = true
	rd.reg.mu.Lock()
	rd.reg.liveReaders--
	rd.reg.mu.Unlock()
	return nil
}
