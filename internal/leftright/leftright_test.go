package leftright

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"arcreg/internal/membuf"
	"arcreg/internal/register"
)

func newReg(t testing.TB, readers, size int) *Register {
	t.Helper()
	r, err := New(register.Config{MaxReaders: readers, MaxValueSize: size})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReadReturnsLastWrite(t *testing.T) {
	r := newReg(t, 2, 64)
	rd, _ := r.NewReaderHandle()
	dst := make([]byte, 64)
	for i := 0; i < 100; i++ {
		val := []byte(fmt.Sprintf("v%03d", i))
		if err := r.Write(val); err != nil {
			t.Fatal(err)
		}
		n, err := rd.Read(dst)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst[:n], val) {
			t.Fatalf("read %q want %q", dst[:n], val)
		}
	}
}

func TestInitialValueBothInstances(t *testing.T) {
	r, err := New(register.Config{MaxReaders: 1, MaxValueSize: 16, Initial: []byte("seed")})
	if err != nil {
		t.Fatal(err)
	}
	// Both instances must hold the initial value (readers may land on
	// either side before the first write).
	for i := 0; i < 2; i++ {
		if string(r.inst[i][:r.sizes[i]]) != "seed" {
			t.Fatalf("instance %d = %q", i, r.inst[i][:r.sizes[i]])
		}
	}
}

// Reads are wait-free: a stalled WRITER (mid-drain) must not block readers.
func TestReadsWaitFreeUnderBlockedWriter(t *testing.T) {
	r := newReg(t, 2, 32)
	r.Write([]byte("v1"))

	// Pin a view so the next write blocks in its drain phase.
	pinner, _ := r.NewReaderHandle()
	if _, err := pinner.View(); err != nil {
		t.Fatal(err)
	}
	writeDone := make(chan struct{})
	go func() {
		r.Write([]byte("v2"))
		close(writeDone)
	}()
	select {
	case <-writeDone:
		t.Fatal("write completed despite a pinned view")
	case <-time.After(50 * time.Millisecond):
	}

	// Another reader must still read without blocking (and may see the
	// new value: the flip happened before the drain).
	rd, _ := r.NewReaderHandle()
	got := make(chan string, 1)
	go func() {
		dst := make([]byte, 32)
		n, err := rd.Read(dst)
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- string(dst[:n])
	}()
	select {
	case v := <-got:
		if v != "v1" && v != "v2" {
			t.Fatalf("concurrent read got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader blocked behind a blocked writer; reads must be wait-free")
	}

	// Releasing the pin unblocks the writer.
	if _, err := pinner.View(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-writeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("writer still blocked after pin release")
	}
	if r.WriteStats().LockSpins == 0 {
		t.Fatal("no drain spins recorded despite a pinned view")
	}
	pinner.Close()
	rd.Close()
}

// A pinned view's bytes must stay stable across subsequent (blocked and
// completed) writes.
func TestViewStableWhilePinned(t *testing.T) {
	r := newReg(t, 2, 128)
	buf := make([]byte, 128)
	membuf.Encode(buf, 1)
	r.Write(buf)
	pinner, _ := r.NewReaderHandle()
	view, err := pinner.View()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), view...)

	// One write can proceed up to its drain; run it in the background.
	bg := make(chan struct{})
	go func() {
		membuf.Encode(buf, 2)
		r.Write(buf)
		close(bg)
	}()
	time.Sleep(30 * time.Millisecond)
	if !bytes.Equal(view, snapshot) {
		t.Fatal("pinned view mutated by a concurrent write")
	}
	if v, err := membuf.Verify(view); err != nil || v != 1 {
		t.Fatalf("pinned view corrupt: version=%d err=%v", v, err)
	}
	// Release and let the writer finish.
	if _, err := pinner.View(); err != nil {
		t.Fatal(err)
	}
	<-bg
	pinner.Close()
}

func TestCloseReleasesPin(t *testing.T) {
	r := newReg(t, 1, 16)
	rd, _ := r.NewReaderHandle()
	if _, err := rd.View(); err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r.Write([]byte("after close"))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the version pin")
	}
}

func TestSequentialModelQuick(t *testing.T) {
	f := func(ops []byte) bool {
		r, err := New(register.Config{MaxReaders: 1, MaxValueSize: 64})
		if err != nil {
			return false
		}
		rd, err := r.NewReaderHandle()
		if err != nil {
			return false
		}
		model := []byte{0}
		dst := make([]byte, 64)
		for _, op := range ops {
			if op%2 == 0 {
				val := bytes.Repeat([]byte{op}, 1+int(op)%32)
				if r.Write(val) != nil {
					return false
				}
				model = val
			} else {
				n, err := rd.Read(dst)
				if err != nil || !bytes.Equal(dst[:n], model) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIntegrity(t *testing.T) {
	const (
		readers = 4
		writes  = 2000
		size    = 512
	)
	r := newReg(t, readers, size)
	seed := make([]byte, size)
	membuf.Encode(seed, 0)
	if err := r.Write(seed); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		rd, _ := r.NewReaderHandle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rd.Close()
			dst := make([]byte, size)
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, err := rd.Read(dst)
				if err != nil {
					errs <- err
					return
				}
				ver, err := membuf.Verify(dst[:n])
				if err != nil {
					errs <- fmt.Errorf("torn left-right read: %w", err)
					return
				}
				if ver < last {
					errs <- fmt.Errorf("version regressed: %d after %d", ver, last)
					return
				}
				last = ver
			}
		}()
	}
	buf := make([]byte, size)
	for i := uint64(1); i <= writes; i++ {
		membuf.Encode(buf, i)
		if err := r.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestErrorsAndCapacity(t *testing.T) {
	r := newReg(t, 1, 8)
	if err := r.Write(make([]byte, 9)); !errors.Is(err, register.ErrValueTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
	rd, _ := r.NewReaderHandle()
	if _, err := r.NewReader(); !errors.Is(err, register.ErrTooManyReaders) {
		t.Fatalf("capacity: %v", err)
	}
	r.Write([]byte("12345678"))
	if n, err := rd.Read(make([]byte, 2)); !errors.Is(err, register.ErrBufferTooSmall) || n != 8 {
		t.Fatalf("small dst: %d %v", n, err)
	}
	// The failed read must not leave a version pinned.
	done := make(chan struct{})
	go func() {
		r.Write([]byte("x"))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("failed Read leaked a version pin")
	}
	rd.Close()
	if _, err := rd.Read(make([]byte, 8)); !errors.Is(err, register.ErrReaderClosed) {
		t.Fatalf("closed: %v", err)
	}
	if r.LiveReaders() != 0 {
		t.Fatalf("live = %d", r.LiveReaders())
	}
}

func TestName(t *testing.T) {
	r := newReg(t, 1, 8)
	if r.Name() != "leftright" || r.MaxReaders() != 1 || r.MaxValueSize() != 8 || r.Writer() == nil {
		t.Fatal("accessors wrong")
	}
}
