// Package register defines the contract shared by every multi-word (1,N)
// register implementation in this repository: ARC (the paper's
// contribution), the RF and Peterson baselines, and the lock-based
// comparator. The benchmark harness, the linearizability checker, and the
// examples all program against these interfaces, so each algorithm plugs
// into every experiment unchanged.
//
// Terminology follows the paper (§3.1): a register holds one multi-word
// value at a time; one distinguished writer process stores new values; up
// to N reader processes retrieve the freshest value. Reads and writes by
// the same process are sequential; processes are asynchronous.
package register

import (
	"errors"
	"fmt"

	"arcreg/internal/obs"
)

// Errors shared by the register implementations.
var (
	// ErrTooManyReaders is returned by NewReader when the register's
	// reader capacity (N) is exhausted.
	ErrTooManyReaders = errors.New("register: reader capacity exhausted")
	// ErrValueTooLarge is returned by Write when a value exceeds the
	// register's configured maximum size.
	ErrValueTooLarge = errors.New("register: value exceeds maximum size")
	// ErrReaderClosed is returned by operations on a closed reader handle.
	ErrReaderClosed = errors.New("register: reader handle closed")
	// ErrBufferTooSmall is returned by Read when dst cannot hold the
	// current value.
	ErrBufferTooSmall = errors.New("register: destination buffer too small")
)

// Writer stores new values into the register. Exactly one goroutine may
// use the Writer at a time — the (1,N) in the register's name. Writes are
// wait-free for ARC, RF and Peterson and blocking for the lock-based
// comparator.
type Writer interface {
	// Write publishes a new register value. The implementation copies p
	// into an internal slot; the caller keeps ownership of p. Values may
	// have different lengths on every call, up to the configured maximum.
	Write(p []byte) error
}

// Reader retrieves register values. A Reader handle is owned by a single
// goroutine; concurrent reads require one handle per goroutine (each
// handle carries the per-process state the algorithms call last_index).
type Reader interface {
	// Read copies the freshest value into dst and returns its length.
	// If dst is too small, it returns ErrBufferTooSmall (and the required
	// length).
	Read(dst []byte) (int, error)
	// Close releases the handle and any slot it pins. After Close the
	// handle is invalid; its identity may be reused by a future
	// NewReader.
	Close() error
}

// Viewer is implemented by readers that can expose the freshest value
// without copying it (ARC's headline structural property: no intermediate
// copies on either operation; the read returns the slot buffer itself).
type Viewer interface {
	// View returns a read-only view of the freshest value. The view is
	// valid only until the handle's next Read, View or Close call: the
	// protocol pins the underlying slot exactly that long. Callers must
	// not modify the returned slice.
	View() ([]byte, error)
}

// Register is a multi-word atomic (1,N) register.
type Register interface {
	// NewReader allocates a reader handle. At most MaxReaders handles
	// may be live at once.
	NewReader() (Reader, error)
	// Writer returns the register's single writer endpoint. All calls
	// return the same underlying writer; it is the caller's duty to use
	// it from one goroutine at a time.
	Writer() Writer
	// MaxReaders reports the reader capacity N.
	MaxReaders() int
	// MaxValueSize reports the largest value Write accepts.
	MaxValueSize() int
	// Name identifies the algorithm ("arc", "rf", "peterson", "lock").
	Name() string
}

// Config parametrizes register construction. The zero value is not valid:
// use Validate to apply defaults and bounds-check.
type Config struct {
	// MaxReaders is N, the number of concurrently live reader handles.
	MaxReaders int
	// MaxValueSize is the largest value, in bytes, a Write may publish.
	// Slot buffers are pre-allocated at this size (the paper pre-allocates
	// with mmap; §3.3 notes dynamic allocation is an orthogonal choice).
	MaxValueSize int
	// Initial, if non-nil, is the register's initial value (Algorithm 1
	// posts it into slot 0). If nil, the register initially holds a
	// single zero byte.
	Initial []byte
}

// DefaultMaxValueSize is used when Config.MaxValueSize is zero: one 4KB
// page, the smallest register size in the paper's evaluation.
const DefaultMaxValueSize = 4096

// Validate applies defaults and rejects impossible configurations.
// algLimit is the algorithm's architectural reader bound (2³²−2 for ARC,
// 58 for RF, practically unbounded for Peterson and the lock register).
func (c *Config) Validate(algLimit uint64) error {
	if c.MaxReaders <= 0 {
		return fmt.Errorf("register: MaxReaders must be positive, got %d", c.MaxReaders)
	}
	if uint64(c.MaxReaders) > algLimit {
		return fmt.Errorf("register: MaxReaders %d exceeds the algorithm limit %d", c.MaxReaders, algLimit)
	}
	if c.MaxValueSize == 0 {
		c.MaxValueSize = DefaultMaxValueSize
	}
	if c.MaxValueSize < 0 {
		return fmt.Errorf("register: MaxValueSize must be positive, got %d", c.MaxValueSize)
	}
	if len(c.Initial) > c.MaxValueSize {
		return fmt.Errorf("register: initial value (%d bytes) exceeds MaxValueSize (%d)",
			len(c.Initial), c.MaxValueSize)
	}
	return nil
}

// InitialOrDefault returns the configured initial value, or the one-byte
// default when none was supplied.
func (c *Config) InitialOrDefault() []byte {
	if c.Initial != nil {
		return c.Initial
	}
	return []byte{0}
}

// ReadStats counts the work a reader handle performed. Implementations
// update the counters with plain stores on the handle's own goroutine;
// collect them only after the goroutine has quiesced (e.g. after a
// WaitGroup join).
type ReadStats struct {
	// Ops is the number of completed reads.
	Ops uint64
	// FastPath counts reads served with zero RMW instructions — ARC's
	// R1–R2 path. Always zero for RF (which issues a FetchAndOr on every
	// read) and for the other baselines.
	FastPath uint64
	// RMW counts read-modify-write instructions executed by reads:
	// paper §1's claim that ARC "limits RMW instructions on reads" is
	// measured from this field versus RF's.
	RMW uint64
	// Fallbacks counts Peterson reads that exhausted both optimistic
	// copies and returned the per-reader copy buffer.
	Fallbacks uint64
	// Retries counts second optimistic attempts (Peterson) or lock
	// acquisition retry rounds (lock register).
	Retries uint64
}

// Add accumulates other into s.
func (s *ReadStats) Add(other ReadStats) {
	s.Ops += other.Ops
	s.FastPath += other.FastPath
	s.RMW += other.RMW
	s.Fallbacks += other.Fallbacks
	s.Retries += other.Retries
}

// Snapshot renders the counters as a Stats-tree node (internal/obs).
// The struct stays the quiescent-collection carrier it always was; the
// node is the view the unified Stats tree and expvar export consume.
func (s ReadStats) Snapshot() obs.Snapshot {
	sn := obs.Snapshot{Name: "reads"}
	sn.Put("ops", s.Ops)
	sn.Put("fast_path", s.FastPath)
	sn.Put("rmw", s.RMW)
	sn.Put("fallbacks", s.Fallbacks)
	sn.Put("retries", s.Retries)
	return sn
}

// WriteStats counts the work the writer performed.
type WriteStats struct {
	// Ops is the number of completed writes.
	Ops uint64
	// RMW counts read-modify-write instructions executed by writes.
	RMW uint64
	// ScanSteps is the total number of slots probed searching for a free
	// slot (ARC W1, RF's trace scan). ScanSteps/Ops near 1 demonstrates
	// the §3.4 amortized-constant-time claim.
	ScanSteps uint64
	// HintHits counts writes whose free slot came from the reader-posted
	// hint (ARC §3.4).
	HintHits uint64
	// CopyOuts counts extra value copies made for readers (Peterson's
	// per-reader copy buffers) — the multiple-copy cost ARC avoids.
	CopyOuts uint64
	// LockSpins counts acquisition retry rounds for the lock register.
	LockSpins uint64
}

// Add accumulates other into s.
func (s *WriteStats) Add(other WriteStats) {
	s.Ops += other.Ops
	s.RMW += other.RMW
	s.ScanSteps += other.ScanSteps
	s.HintHits += other.HintHits
	s.CopyOuts += other.CopyOuts
	s.LockSpins += other.LockSpins
}

// Snapshot renders the counters as a Stats-tree node (see
// ReadStats.Snapshot).
func (s WriteStats) Snapshot() obs.Snapshot {
	sn := obs.Snapshot{Name: "writes"}
	sn.Put("ops", s.Ops)
	sn.Put("rmw", s.RMW)
	sn.Put("scan_steps", s.ScanSteps)
	sn.Put("hint_hits", s.HintHits)
	sn.Put("copy_outs", s.CopyOuts)
	sn.Put("lock_spins", s.LockSpins)
	return sn
}

// StatReader is implemented by reader handles that expose ReadStats.
type StatReader interface {
	ReadStats() ReadStats
}

// FreshnessProber is implemented by readers that can report, without
// performing a read, whether the value they last returned is still the
// freshest one. ARC answers this with a single atomic load and no RMW
// instruction (the R1 comparison of its fast path, exposed); RF answers
// it with a load of its sync word. Pollers use it to skip deserialization
// when nothing changed.
type FreshnessProber interface {
	// Fresh reports whether the handle's last View/Read still returns
	// the register's current value. A handle that has never read reports
	// false.
	Fresh() bool
}

// FreshViewer is implemented by readers whose zero-copy View can also
// report whether it returned a different publication than the handle's
// previous read — a combined probe-and-fetch. For ARC the unchanged case
// is the R1–R2 fast path: one atomic load, zero RMW instructions, and the
// caller learns it may keep using whatever it derived from the previous
// view (decoded headers, parsed structures). Compositions over several
// registers (internal/mnreg) use this to skip re-decoding components that
// did not change, paying one load per unchanged component.
type FreshViewer interface {
	// ViewFresh returns the freshest value without copying, like
	// Viewer.View, plus changed: false when the view is the same
	// publication the handle's previous View/ViewFresh/Read returned.
	// The first read on a handle always reports changed == true. The
	// view's validity rules are those of Viewer.View.
	ViewFresh() (view []byte, changed bool, err error)
}

// StatWriter is implemented by writers that expose WriteStats.
type StatWriter interface {
	WriteStats() WriteStats
}

// Caps declares which optional capabilities a register's handles
// implement, making capability discovery a first-class constant of each
// algorithm instead of per-handle interface assertions. The facade
// (package arcreg) reads it once at construction; the optional
// interfaces above remain the operational contract the handles satisfy.
type Caps struct {
	// ZeroCopyView: readers implement Viewer.
	ZeroCopyView bool
	// FreshProbe: readers implement FreshnessProber.
	FreshProbe bool
	// FreshView: readers implement FreshViewer.
	FreshView bool
	// ReadStats: readers implement StatReader.
	ReadStats bool
	// WriteStats: the writer implements StatWriter.
	WriteStats bool
	// WaitFreeRead / WaitFreeWrite: the operation completes in a bounded
	// number of its own steps regardless of other processes (false for
	// the lock register on both sides, for seqlock reads, and for
	// Left-Right writes).
	WaitFreeRead  bool
	WaitFreeWrite bool
	// Watchable: the register carries a publication sequencer
	// (internal/notify), so watchers park on publications instead of
	// polling — the facade's Watch/Changed surfaces are event-driven.
	// Registers without it (every non-ARC baseline) degrade to the poll
	// fallback. The sequencer costs the writer zero RMW instructions
	// and zero allocations while no watcher is parked.
	Watchable bool
}

// CapabilityReporter is implemented by registers that publish their
// Caps. Every register in this repository implements it; CapsOf guards
// the assertion for out-of-tree implementations.
type CapabilityReporter interface {
	Caps() Caps
}

// CapsOf reports r's capabilities, or the zero (most conservative) Caps
// when r does not implement CapabilityReporter. Callers holding handles
// may still discover capabilities by interface assertion; a false Caps
// field is advisory, a true one is a promise.
func CapsOf(r Register) Caps {
	if cr, ok := r.(CapabilityReporter); ok {
		return cr.Caps()
	}
	return Caps{}
}
