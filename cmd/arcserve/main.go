// Command arcserve exposes an arcreg keyed register map over HTTP: the
// wait-free (1,N) register behind a network edge. Reads (GET /k/{key})
// ride pooled register readers — zero RMW, zero allocation for an
// unchanged value; writes (PUT/DELETE /k/{key}) are serialized per
// shard through bounded single-writer queues, preserving the register's
// (1,N) discipline under arbitrary HTTP concurrency (overload answers
// 503 + Retry-After, never queueing unboundedly); watches
// (GET /watch/{key}, GET /watch) stream over SSE with the register's
// latest-value conflation as the backpressure story — a slow client
// sees fewer, newer values and costs the server O(1) memory.
//
//	arcserve -addr :8080 -shards 8 -pool 16 -max-value 4096
//
// Routes:
//
//	GET    /k/{key}        value bytes (404 absent, 503+Retry-After degraded)
//	PUT    /k/{key}        store body (204; 503 queue full, 413 too large)
//	DELETE /k/{key}        delete (204; 404 absent)
//	GET    /watch/{key}    SSE value stream (?b64=1 base64; ?poll=5s long-poll)
//	GET    /watch          SSE whole-map snapshot-delta stream
//	GET    /keys           live key listing (JSON)
//	POST   /compact        compact every shard through the writer queues
//	GET    /statz          stats tree (text; ?format=json)
//	GET    /metricz        Prometheus text exposition of the stats tree
//	GET    /debug/trace    flight-recorder spans (-trace; JSON, ?format=text)
//	GET    /debug/vars     expvar, including the server tree under -expvar
//
// With -trace the map runs its wait-free flight recorder (zero RMW,
// zero allocation on the recording paths); -debug-addr serves an
// admin plane on a second listener — net/http/pprof, expvar,
// /debug/trace, /statz, /metricz — so profiling and scraping never
// contend with data-plane connections.
//
// SIGINT/SIGTERM drain in-flight requests (graceful http.Server
// Shutdown), then close the serving layer: writer queues stop accepting,
// in-flight writes complete, pooled readers are released.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"arcreg/internal/regmap"
	"arcreg/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("arcserve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		shards   = fs.Int("shards", 8, "map shard count (rounded up to a power of two)")
		readers  = fs.Int("readers", 0, "map reader-handle capacity N (0 = pool + watch streams + 2)")
		pool     = fs.Int("pool", serve.DefaultReaders, "pooled GET reader handles")
		streams  = fs.Int("watch-streams", serve.DefaultWatchStreams, "concurrent watch stream cap")
		queue    = fs.Int("queue", serve.DefaultQueueDepth, "per-shard write queue depth")
		maxValue = fs.Int("max-value", 4096, "max value size in bytes")
		dynamic  = fs.Bool("dynamic", false, "allocate exact-size value buffers per Set (many small keys)")
		expName  = fs.String("expvar", "arcserve", "expvar name for the stats tree (empty disables)")
		grace    = fs.Duration("grace", 10*time.Second, "shutdown drain budget")
		traceOn  = fs.Bool("trace", false, "enable the wait-free flight recorder (GET /debug/trace, span histograms in /metricz)")
		dbgAddr  = fs.String("debug-addr", "", "admin-plane listen address for pprof, expvar, /debug/trace, /statz, /metricz (empty disables)")
	)
	fs.Parse(os.Args[1:])

	n := *readers
	if n <= 0 {
		n = *pool + *streams + 2
	}
	m, err := regmap.New(regmap.Config{
		Shards:        *shards,
		MaxReaders:    n,
		MaxValueSize:  *maxValue,
		DynamicValues: *dynamic,
		Trace:         *traceOn,
	})
	if err != nil {
		log.Fatalf("arcserve: %v", err)
	}
	srv, err := serve.New(serve.Config{
		Map:          m,
		Readers:      *pool,
		WatchStreams: *streams,
		QueueDepth:   *queue,
		ExpvarName:   *expName,
	})
	if err != nil {
		log.Fatalf("arcserve: %v", err)
	}

	// The listener goes through serve.Listener so the accept-stall fault
	// point is armable here exactly as in the chaos scenarios — permanent
	// instrumentation, one atomic load per accept while disarmed.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("arcserve: %v", err)
	}
	hs := &http.Server{
		Handler:   srv,
		ConnState: srv.ConnState,
	}

	done := make(chan error, 1)
	go func() { done <- hs.Serve(serve.Listener(ln)) }()
	log.Printf("arcserve: listening on %s (%d shards, %d pooled readers, %d watch streams, queue %d)",
		ln.Addr(), m.Shards(), *pool, *streams, *queue)

	// The admin plane rides its own listener and http.Server so a
	// pprof profile or a metrics scrape never occupies a data-plane
	// connection — and so the data-plane address can be fronted by a
	// proxy while the debug port stays loopback-only.
	var dhs *http.Server
	if *dbgAddr != "" {
		dln, err := net.Listen("tcp", *dbgAddr)
		if err != nil {
			log.Fatalf("arcserve: debug listener: %v", err)
		}
		dhs = &http.Server{Handler: srv.DebugMux()}
		go func() {
			if err := dhs.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Printf("arcserve: debug serve: %v", err)
			}
		}()
		log.Printf("arcserve: debug plane on %s (pprof, expvar, /debug/trace, /statz, /metricz)", dln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("arcserve: %s: draining (budget %v)", s, *grace)
		// Shutdown drains ordinary requests; open SSE streams hold it
		// until the budget expires, and srv.Close severs them (their
		// contexts join the serving layer's base context).
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		err := hs.Shutdown(ctx)
		cancel()
		if err == context.DeadlineExceeded {
			err = nil // long-lived streams held the drain; Close below ends them
		}
		if dhs != nil {
			dhs.Close()
		}
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Printf("arcserve: shutdown: %v", err)
			os.Exit(1)
		}
		log.Printf("arcserve: clean exit")
	case err := <-done:
		srv.Close()
		log.Fatalf("arcserve: serve: %v", err)
	}
}
