package main

// servechaos: the serving-layer chaos scenario. Where the map scenarios
// attack the register protocol itself, this one attacks the network
// edge of internal/serve with the three serve/ fault points armed on a
// seeded schedule against a live loopback server:
//
//   - serve/slow-client stalls the SSE event loop between composing a
//     frame and writing it — slow consumers that must conflate, not
//     queue;
//   - serve/mid-response-disconnect crashes GET handlers between the
//     register read and the body write — clients vanishing mid-reply
//     (recovered to http.ErrAbortHandler, a severed connection);
//   - serve/accept-stall delays the accept loop — connection churn
//     against a saturated listener.
//
// Meanwhile HTTP readers verify every observed value (torn-read
// detection, per-key version monotonicity), a writer PUTs through the
// shard queues retrying sheds, SSE watchers connect and abruptly
// disconnect, and a ledger walker continuously asserts the watcher
// backpressure invariant (observed ≤ published). After the storm the
// scenario proves no shard writer wedged — a PUT+GET round-trip must
// complete on every shard — and that the server's goroutines drained.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arcreg/internal/fault"
	"arcreg/internal/membuf"
	"arcreg/internal/notify"
	"arcreg/internal/regmap"
	"arcreg/internal/serve"
)

func runServeChaos(seed uint64, duration time.Duration) int {
	sched, err := fault.NewSchedule(seed,
		fault.Rule{Point: serve.FaultSlowClient, Kind: fault.Stall, Every: 4, Stall: 200 * time.Microsecond},
		fault.Rule{Point: serve.FaultAcceptStall, Kind: fault.Stall, Every: 2, Stall: 500 * time.Microsecond},
		fault.Rule{Point: serve.FaultMidResponseDisconnect, Kind: fault.Crash, Every: 17},
	)
	if err != nil {
		fmt.Println("arcstress: servechaos:", err)
		return 2
	}
	m, err := regmap.New(regmap.Config{Shards: 2, MaxReaders: 16, MaxValueSize: 64})
	if err != nil {
		fmt.Println("arcstress: servechaos:", err)
		return 2
	}
	srv, err := serve.New(serve.Config{Map: m, Readers: 4, WatchStreams: 4, QueueDepth: 64})
	if err != nil {
		fmt.Println("arcstress: servechaos:", err)
		return 2
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("arcstress: servechaos:", err)
		return 2
	}
	hs := &http.Server{Handler: srv, ConnState: srv.ConnState}
	go hs.Serve(serve.Listener(ln))
	base := "http://" + ln.Addr().String()

	runtime.GC()
	baseline := runtime.NumGoroutine()

	runCtx, runCancel := context.WithCancel(context.Background())
	defer runCancel()

	const stable = "stable"
	keys := []string{stable, "churn-0", "churn-1", "churn-2"}
	var version atomic.Uint64
	s := &mapChaos{}
	var aborts atomic.Uint64 // client-side severed responses (crash point)
	var sheds atomic.Uint64
	transport := &http.Transport{MaxIdleConnsPerHost: 16}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	// put publishes one versioned value over HTTP, retrying sheds and
	// severed connections (the version is re-sent, so monotonicity
	// holds); only genuine protocol errors fail the run.
	put := func(key string) bool {
		b := make([]byte, 64)
		membuf.Encode(b, version.Add(1))
		for {
			if s.stop.Load() {
				return false
			}
			req, err := http.NewRequest("PUT", base+"/k/"+key, bytes.NewReader(b))
			if err != nil {
				s.fail("put %s: %v", key, err)
				return false
			}
			resp, err := client.Do(req)
			if err != nil {
				aborts.Add(1) // a crashed sibling response severed our conn
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusNoContent:
				s.writes.Add(1)
				return true
			case http.StatusServiceUnavailable:
				sheds.Add(1)
				time.Sleep(time.Millisecond)
			default:
				s.fail("put %s: status %d", key, resp.StatusCode)
				return false
			}
		}
	}
	for _, k := range keys {
		if !put(k) {
			return s.report("servechaos", "")
		}
	}

	var wg sync.WaitGroup

	// HTTP verifier readers: every 200 body must verify with per-key
	// monotone versions; 404s (churn deletes) and severed responses
	// (the crash point) are the chaos, not failures.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			last := make(map[string]uint64, len(keys))
			var i int
			for !s.stop.Load() {
				key := keys[i%len(keys)]
				i++
				resp, err := client.Get(base + "/k/" + key)
				if err != nil {
					aborts.Add(1)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					aborts.Add(1) // severed mid-body
					continue
				}
				switch resp.StatusCode {
				case http.StatusNotFound:
					continue
				case http.StatusOK:
				default:
					s.fail("reader %d: GET %s: status %d", id, key, resp.StatusCode)
					return
				}
				ver, verr := membuf.Verify(body)
				if verr != nil {
					s.fail("reader %d: torn value over the wire for %s: %v", id, key, verr)
					return
				}
				if ver < last[key] {
					s.fail("reader %d: %s version regressed %d after %d", id, key, ver, last[key])
					return
				}
				last[key] = ver
				s.reads.Add(1)
			}
		}(i)
	}

	// SSE watchers with abrupt disconnects: connect to the stable key's
	// stream, drain a few events (each server-side write stalling on the
	// slow-client point), then vanish without closing the stream
	// politely. The global version high-water mark must stay monotone
	// across reconnects — conflation only moves forward.
	var lastWatched atomic.Uint64
	var streamEvents atomic.Uint64
	var reconnects atomic.Uint64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := seed*0x9e3779b97f4a7c15 + uint64(id) + 1
			for !s.stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				// Derive each stream from the run context so a watcher
				// parked mid-drain is severed at stop time, not leaked.
				ctx, cancel := context.WithCancel(runCtx)
				req, err := http.NewRequestWithContext(ctx, "GET", base+"/watch/"+stable+"?b64=1", nil)
				if err != nil {
					cancel()
					s.fail("watcher %d: %v", id, err)
					return
				}
				resp, err := client.Do(req)
				if err != nil {
					cancel()
					continue // accept stall / severed conn; reconnect
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					cancel()
					if resp.StatusCode == http.StatusServiceUnavailable {
						sheds.Add(1)
						time.Sleep(time.Millisecond)
						continue
					}
					s.fail("watcher %d: stream status %d", id, resp.StatusCode)
					return
				}
				reconnects.Add(1)
				br := bufio.NewReader(resp.Body)
				drain := 2 + int(rng%6)
				for e := 0; e < drain && !s.stop.Load(); e++ {
					data, err := readServeSSE(br)
					if err != nil {
						break // stream severed; reconnect
					}
					raw, derr := base64.StdEncoding.DecodeString(data)
					if derr != nil {
						s.fail("watcher %d: bad b64 frame: %v", id, derr)
						cancel()
						resp.Body.Close()
						return
					}
					ver, verr := membuf.Verify(raw)
					if verr != nil {
						s.fail("watcher %d: torn streamed value: %v", id, verr)
						cancel()
						resp.Body.Close()
						return
					}
					for {
						prev := lastWatched.Load()
						if ver <= prev {
							break
						}
						if lastWatched.CompareAndSwap(prev, ver) {
							break
						}
					}
					streamEvents.Add(1)
				}
				cancel() // the abrupt disconnect
				resp.Body.Close()
			}
		}(w)
	}

	// Ledger walker: the watcher backpressure invariant, continuously,
	// while streams churn underneath it.
	var walks atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !s.stop.Load() {
			m.WatchTracker().Each(func(ws *notify.WatchStats) {
				if o, p := ws.Observed(), ws.Published(); o > p {
					s.fail("walker: ledger inverted: observed %d > published %d", o, p)
				}
			})
			if _, ok := srv.Stats().Get("watch_events"); !ok {
				s.fail("walker: serve stats lost watch_events")
			}
			walks.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	sched.Arm()
	// Writer: versioned PUT churn with deletes, through the shard
	// queues, for the whole window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var round uint64
		for !s.stop.Load() {
			round++
			if !put(keys[round%uint64(len(keys))]) {
				return
			}
			if round%8 == 0 {
				victim := keys[1+(round/8)%uint64(len(keys)-1)] // never stable
				req, _ := http.NewRequest("DELETE", base+"/k/"+victim, nil)
				resp, err := client.Do(req)
				if err != nil {
					aborts.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusNoContent, http.StatusNotFound:
				case http.StatusServiceUnavailable:
					sheds.Add(1)
				default:
					s.fail("writer: DELETE %s: status %d", victim, resp.StatusCode)
					return
				}
			}
		}
	}()

	time.Sleep(duration)
	s.stop.Store(true)
	runCancel()
	wg.Wait()
	sched.Disarm()

	// No-wedge proof: with the faults disarmed, every shard's writer
	// goroutine must still apply a PUT and serve its GET back.
	wedged := false
	covered := make([]bool, m.Shards())
	for i := 0; !allTrue(covered); i++ {
		key := fmt.Sprintf("wedge-check-%d", i)
		si := m.ShardOf(key)
		if covered[si] {
			continue
		}
		covered[si] = true
		b := make([]byte, 64)
		membuf.Encode(b, version.Add(1))
		deadline := time.Now().Add(5 * time.Second)
		ok := false
		for time.Now().Before(deadline) {
			req, _ := http.NewRequest("PUT", base+"/k/"+key, bytes.NewReader(b))
			resp, err := client.Do(req)
			if err != nil {
				time.Sleep(time.Millisecond)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			code := resp.StatusCode
			resp.Body.Close()
			if code != http.StatusNoContent {
				time.Sleep(time.Millisecond)
				continue
			}
			if gresp, gerr := client.Get(base + "/k/" + key); gerr == nil {
				body, _ := io.ReadAll(gresp.Body)
				gresp.Body.Close()
				if gresp.StatusCode == http.StatusOK && bytes.Equal(body, b) {
					ok = true
					break
				}
			}
		}
		if !ok {
			s.fail("shard %d writer wedged: post-chaos PUT+GET round-trip never completed", si)
			wedged = true
		}
	}

	// Server-side accounting: the crash point must actually have severed
	// responses, and the schedule must have fired.
	sn := srv.Stats()
	aborted, _ := sn.Get("aborted")
	conflated, _ := sn.Get("watch_conflated")
	if sched.Fired() == 0 {
		s.fail("serve fault schedule never fired (reads=%d writes=%d)", s.reads.Load(), s.writes.Load())
	}
	if aborted == 0 {
		s.fail("mid-response crash point never aborted a response server-side")
	}
	if aborts.Load() == 0 {
		s.fail("no client ever observed a severed response")
	}
	if streamEvents.Load() == 0 {
		s.fail("watch streams delivered nothing through the storm")
	}
	if walks.Load() == 0 {
		s.fail("ledger walker never completed a pass")
	}

	// Teardown and goroutine hygiene: the edge must drain completely.
	hs.Close()
	if err := srv.Close(); err != nil {
		s.fail("close: %v", err)
	}
	if !wedged {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= baseline+4 {
				break
			} else if time.Now().After(deadline) {
				s.fail("goroutine leak after close: %d, baseline %d", n, baseline)
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return s.report("servechaos",
		fmt.Sprintf(", %d client aborts, %d server aborts, %d sheds, %d stream events, %d reconnects, %d conflated, %d ledger walks, %d faults fired",
			aborts.Load(), aborted, sheds.Load(), streamEvents.Load(), reconnects.Load(), conflated, walks.Load(), sched.Fired()))
}

func allTrue(b []bool) bool {
	for _, v := range b {
		if !v {
			return false
		}
	}
	return true
}

// readServeSSE reads one SSE frame and returns its joined data payload.
func readServeSSE(br *bufio.Reader) (string, error) {
	var data []string
	seen := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if !seen {
				continue
			}
			return strings.Join(data, "\n"), nil
		case strings.HasPrefix(line, "data: "):
			seen = true
			data = append(data, line[len("data: "):])
		default:
			seen = true
		}
	}
}
