// Command arcstress runs long-horizon failure-injection stress against a
// register implementation. Where arccheck records a bounded history and
// decides atomicity offline, arcstress runs open-ended adversarial
// scenarios with online invariant checking, exercising the situations the
// paper's wait-freedom guarantees are about:
//
//	stall  — a rotating subset of readers pins a snapshot and goes silent;
//	         the writer and the remaining readers must keep progressing
//	         (the N+2 buffer bound at work).
//	churn  — reader handles are continuously opened, used and closed while
//	         the writer runs; capacity must never leak.
//	steal  — all workers suffer CPU-steal injection (the virtualized
//	         platform of Figure 2) while integrity is checked online.
//	mixed  — all of the above at once.
//
// Map-level scenarios (see mapstress.go) drive the sharded regmap store
// through compaction epochs, corrupt-shard repair and the deterministic
// fault-injection points instead of a single register:
//
//	dirchurn, corrupt-repair, compact-under-watch, watchstorm
//
// The gatetree scenario drives one register's sequencer through a
// seeded random wakeup-tree topology under relay-cascade fault
// injection (see gatetree.go):
//
//	gatetree
//
// The serving-layer scenario (servestress.go) runs a live loopback
// arcserve HTTP server under connection-level faults — slow clients,
// mid-response disconnects, accept-loop stalls:
//
//	servechaos
//
// The flight-recorder scenario (tracestorm.go) runs a traced map behind
// a live server with slow SSE clients while a walker continuously
// reconstructs spans from rings whose owners keep recording, under
// stalls armed at the ring-publish seqlock window:
//
//	tracestorm
//
// -scenario accepts a comma-separated list, run sequentially; the exit
// status is the worst of the runs. -seed makes the map and serve
// scenarios' fault schedules deterministic, and -faultcov additionally
// fails the run if any registered regmap, notify, serve or trace fault
// point was never armed.
//
// Every read is integrity-verified (torn-read detection) and checked for
// per-reader version monotonicity online.
//
//	arcstress -alg arc -scenario mixed -duration 30s
//	arcstress -scenario dirchurn,corrupt-repair -duration 5s -seed 1 -faultcov
//
// Exit status 0 if no violation was observed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arcreg/internal/harness"
	"arcreg/internal/membuf"
	"arcreg/internal/register"
	"arcreg/internal/steal"
)

func main() {
	os.Exit(run())
}

type shared struct {
	reg      register.Register
	size     int
	stop     atomic.Bool
	failures atomic.Uint64
	reads    atomic.Uint64
	writes   atomic.Uint64
	stalls   atomic.Uint64
	churns   atomic.Uint64
	mu       sync.Mutex
	errs     []string
}

func (s *shared) fail(format string, args ...any) {
	s.failures.Add(1)
	s.mu.Lock()
	if len(s.errs) < 16 {
		s.errs = append(s.errs, fmt.Sprintf(format, args...))
	}
	s.mu.Unlock()
}

func run() int {
	var (
		alg      = flag.String("alg", "arc", "algorithm: arc|rf|peterson|lock|seqlock|leftright|arc-nofastpath|arc-nohint")
		scenario = flag.String("scenario", "mixed", "comma-separated list of stall|churn|steal|mixed|dirchurn|corrupt-repair|compact-under-watch|watchstorm|gatetree|servechaos|tracestorm")
		threads  = flag.Int("threads", 6, "reader workers (plus 1 writer)")
		size     = flag.Int("size", 512, "value size in bytes")
		duration = flag.Duration("duration", 10*time.Second, "stress duration (per scenario)")
		stealF   = flag.Float64("steal", 0.3, "steal fraction for steal/mixed scenarios")
		seed     = flag.Uint64("seed", 1, "seed for the map scenarios' fault schedules")
		faultcov = flag.Bool("faultcov", false, "fail if any regmap, notify or serve fault point was never armed")
	)
	flag.Parse()

	worst := 0
	for _, name := range strings.Split(*scenario, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var rc int
		if isMapScenario(name) {
			rc = mapScenarios[name](*seed, *duration)
		} else {
			rc = runRegister(*alg, name, *threads, *size, *duration, *stealF)
		}
		if rc > worst {
			worst = rc
		}
	}
	if *faultcov {
		if rc := checkFaultCoverage(); rc > worst {
			worst = rc
		}
	}
	return worst
}

func runRegister(alg, scenario string, threads, size int, duration time.Duration, stealF float64) int {
	a, err := harness.ParseAlgorithm(alg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arcstress:", err)
		return 2
	}
	if size < membuf.MinPayload {
		size = membuf.MinPayload
	}
	wantStall := scenario == "stall" || scenario == "mixed"
	wantChurn := scenario == "churn" || scenario == "mixed"
	wantSteal := scenario == "steal" || scenario == "mixed"
	if !wantStall && !wantChurn && !wantSteal {
		fmt.Fprintf(os.Stderr, "arcstress: unknown scenario %q\n", scenario)
		return 2
	}
	// Stalling readers park on handles, so budget extra capacity.
	capacity := threads * 2
	if capacity > a.MaxReaders() {
		capacity = a.MaxReaders()
	}
	if threads+1 > capacity {
		fmt.Fprintf(os.Stderr, "arcstress: %d readers do not fit %s's capacity %d\n",
			threads, a, capacity)
		return 2
	}

	frac := 0.0
	if wantSteal {
		frac = stealF
	}
	inj, err := steal.NewInjector(steal.Config{Fraction: frac, Seed: 7})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arcstress:", err)
		return 2
	}

	seed := make([]byte, size)
	membuf.Encode(seed, 0)
	reg, err := harness.NewRegister(a, register.Config{
		MaxReaders:   capacity,
		MaxValueSize: size,
		Initial:      seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arcstress:", err)
		return 2
	}

	s := &shared{reg: reg, size: size}
	var wg sync.WaitGroup

	// Writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, size)
		vcpu := inj.VCPU(0)
		var version uint64
		for !s.stop.Load() {
			version++
			membuf.Encode(buf, version)
			if err := reg.Writer().Write(buf); err != nil {
				s.fail("writer: %v", err)
				return
			}
			s.writes.Add(1)
			vcpu.Tick()
		}
	}()

	// Steady readers (with optional stalling behaviour).
	for i := 0; i < threads; i++ {
		rd, err := reg.NewReader()
		if err != nil {
			fmt.Fprintln(os.Stderr, "arcstress:", err)
			return 2
		}
		wg.Add(1)
		go func(id int, rd register.Reader) {
			defer wg.Done()
			defer rd.Close()
			viewer, _ := rd.(register.Viewer)
			scratch := make([]byte, size)
			vcpu := inj.VCPU(1 + id)
			var last uint64
			var ops uint64
			for !s.stop.Load() {
				var (
					val []byte
					err error
				)
				if viewer != nil {
					val, err = viewer.View()
				} else {
					var n int
					n, err = rd.Read(scratch)
					val = scratch[:max(n, 0)]
				}
				if err != nil {
					s.fail("reader %d: %v", id, err)
					return
				}
				ver, verr := membuf.Verify(val)
				if verr != nil {
					s.fail("reader %d: torn read: %v", id, verr)
					return
				}
				if ver < last {
					s.fail("reader %d: version regressed %d after %d", id, ver, last)
					return
				}
				last = ver
				s.reads.Add(1)
				ops++
				// Stall scenario: periodically pin the current snapshot
				// and go silent while the writer laps the buffer ring.
				if wantStall && id%2 == 0 && ops%50_000 == 0 {
					s.stalls.Add(1)
					pinned := append([]byte(nil), val...)
					time.Sleep(20 * time.Millisecond)
					if viewer != nil {
						// The pinned view must still verify bit-for-bit:
						// the slot cannot have been recycled under us.
						if _, verr := membuf.Verify(val); verr != nil {
							s.fail("reader %d: pinned view corrupted during stall: %v", id, verr)
							return
						}
						for j := range val {
							if val[j] != pinned[j] {
								s.fail("reader %d: pinned view byte %d changed", id, j)
								return
							}
						}
					}
				}
				vcpu.Tick()
			}
		}(i, rd)
	}

	// Churn worker: open/use/close handles continuously.
	if wantChurn {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]byte, size)
			for !s.stop.Load() {
				rd, err := reg.NewReader()
				if err != nil {
					// Transient exhaustion is acceptable; leaking is not —
					// leaks manifest as permanent exhaustion, caught below.
					time.Sleep(time.Millisecond)
					continue
				}
				if n, err := rd.Read(scratch); err != nil {
					s.fail("churn: read: %v", err)
				} else if _, verr := membuf.Verify(scratch[:n]); verr != nil {
					s.fail("churn: torn read: %v", verr)
				} else {
					s.reads.Add(1)
				}
				if err := rd.Close(); err != nil {
					s.fail("churn: close: %v", err)
				}
				s.churns.Add(1)
			}
		}()
	}

	// Progress reporting.
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Printf("  ... %d reads, %d writes, %d stalls, %d churns, %d failures\n",
					s.reads.Load(), s.writes.Load(), s.stalls.Load(), s.churns.Load(), s.failures.Load())
			}
		}
	}()

	time.Sleep(duration)
	s.stop.Store(true)
	wg.Wait()
	close(done)

	fmt.Printf("arcstress: %s scenario=%s threads=%d size=%d duration=%v\n",
		a, scenario, threads, size, duration)
	fmt.Printf("  totals: %d reads, %d writes, %d stalls, %d churn cycles\n",
		s.reads.Load(), s.writes.Load(), s.stalls.Load(), s.churns.Load())
	if f := s.failures.Load(); f > 0 {
		fmt.Printf("  FAILURES: %d\n", f)
		for _, e := range s.errs {
			fmt.Println("   ", e)
		}
		return 1
	}
	fmt.Println("  OK: no invariant violations observed")
	return 0
}
