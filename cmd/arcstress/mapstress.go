package main

// Map-level chaos scenarios: where the register scenarios (stall,
// churn, steal) adversarially exercise one ARC register, these drive
// the sharded map through its robustness machinery — directory
// compaction epochs, corrupt-shard latching and repair, and the
// deterministic fault-injection points in internal/regmap:
//
//	dirchurn           — delete/recreate churn against a shrunk
//	                     directory ceiling with yield/stall/crash
//	                     faults armed; the writer recovers every
//	                     injected crash with a repair compaction and
//	                     readers verify torn-read-free, per-key
//	                     version-monotone observations throughout.
//	corrupt-repair     — corrupt shard directories are injected on a
//	                     schedule; spinning readers must latch with
//	                     ErrShardCorrupt, a parked watcher must survive
//	                     the episode, and one compaction epoch must
//	                     repair everyone.
//	compact-under-watch— a parked watcher rides ≥10 compaction epochs
//	                     driven by sibling-key churn: no spurious
//	                     wakeup deliveries, no misses, versions
//	                     monotone, and the final value arrives.
//	watchstorm         — slow watchers against a fast writer with
//	                     stall faults armed inside the notify
//	                     sequencer (publish-side epoch crossing, gate
//	                     swap) while a stats walker continuously
//	                     snapshots the tree; asserts the backpressure
//	                     ledgers record real conflation and lag and
//	                     every accepted stats snapshot is internally
//	                     consistent.
//	gatetree           — a seeded random wakeup-tree topology under
//	                     relay-cascade fault injection: parked
//	                     watchers, subscription churn and a ledger
//	                     walker race a back-to-back writer, ending
//	                     with a final-value no-lost-wakeup gate and a
//	                     relay drain check; see gatetree.go.
//	servechaos         — the HTTP serving layer under connection-level
//	                     faults (slow clients, mid-response
//	                     disconnects, accept stalls); see
//	                     servestress.go.
//
// All scenarios are seeded (-seed) and run their fault schedules
// deterministically; -faultcov additionally fails the run if any
// registered regmap, notify or serve fault point was never armed by
// any schedule.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arcreg/internal/fault"
	"arcreg/internal/membuf"
	"arcreg/internal/notify"
	"arcreg/internal/regmap"
)

var mapScenarios = map[string]func(seed uint64, duration time.Duration) int{
	"dirchurn":            runDirChurn,
	"corrupt-repair":      runCorruptRepair,
	"compact-under-watch": runCompactUnderWatch,
	"watchstorm":          runWatchStorm,
	"gatetree":            runGateTree,
	"servechaos":          runServeChaos,
	"tracestorm":          runTraceStorm,
}

func isMapScenario(name string) bool {
	_, ok := mapScenarios[name]
	return ok
}

// mapChaos is the shared failure sink for one map scenario.
type mapChaos struct {
	stop     atomic.Bool
	failures atomic.Uint64
	reads    atomic.Uint64
	writes   atomic.Uint64
	episodes atomic.Uint64 // ErrShardCorrupt observations
	crashes  atomic.Uint64 // fault.Crashed recoveries
	repairs  atomic.Uint64 // reader latches cleared (summed at close)
	mu       sync.Mutex
	errs     []string
}

func (s *mapChaos) fail(format string, args ...any) {
	s.failures.Add(1)
	s.mu.Lock()
	if len(s.errs) < 16 {
		s.errs = append(s.errs, fmt.Sprintf(format, args...))
	}
	s.mu.Unlock()
}

func (s *mapChaos) report(name string, extra string) int {
	fmt.Printf("arcstress: map scenario=%s\n", name)
	fmt.Printf("  totals: %d reads, %d writes, %d corrupt episodes, %d crash recoveries, %d repairs%s\n",
		s.reads.Load(), s.writes.Load(), s.episodes.Load(), s.crashes.Load(), s.repairs.Load(), extra)
	if f := s.failures.Load(); f > 0 {
		fmt.Printf("  FAILURES: %d\n", f)
		for _, e := range s.errs {
			fmt.Println("   ", e)
		}
		return 1
	}
	fmt.Println("  OK: no invariant violations observed")
	return 0
}

// recoverCrashed runs op, converting an injected fault.Crashed panic
// into a reported recovery; any other panic propagates.
func recoverCrashed(s *mapChaos, op func() error) (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fault.Crashed); !ok {
				panic(r)
			}
			s.crashes.Add(1)
			crashed = true
		}
	}()
	return op(), false
}

// repairCompact compacts until the compaction itself survives its own
// armed crash points — the writer's universal post-crash recovery.
func repairCompact(s *mapChaos, m *regmap.Map) {
	for {
		if err, crashed := recoverCrashed(s, m.Compact); !crashed {
			if err != nil {
				s.fail("repair compaction: %v", err)
			}
			return
		}
	}
}

// chaosReader spins Gets over keys, verifying every observed value
// (torn-read detection) and per-key version monotonicity. Corrupt
// latches are counted and — when allowCorrupt — tolerated as episodes;
// the next publication repairs them.
func chaosReader(s *mapChaos, m *regmap.Map, id int, seed uint64, keys []string, allowCorrupt bool) func() {
	rd, err := m.NewReader()
	if err != nil {
		s.fail("reader %d: %v", id, err)
		return func() {}
	}
	return func() {
		defer func() {
			s.repairs.Add(rd.Stats().Repairs)
			rd.Close()
		}()
		rng := seed*0x9e3779b97f4a7c15 + uint64(id)
		last := make(map[string]uint64, len(keys))
		var ops uint64
		for !s.stop.Load() {
			// Cooperative yield so spinning readers cannot starve the
			// (fault-yielded) writer on small machines.
			if ops++; ops%512 == 0 {
				runtime.Gosched()
			}
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			key := keys[rng%uint64(len(keys))]
			v, err := rd.Get(key)
			switch {
			case errors.Is(err, regmap.ErrKeyNotFound):
				continue // deleted; recreation will carry a newer version
			case errors.Is(err, regmap.ErrShardCorrupt):
				s.episodes.Add(1)
				if !allowCorrupt {
					s.fail("reader %d: unexpected corrupt latch: %v", id, err)
					return
				}
				continue
			case err != nil:
				s.fail("reader %d: Get(%s): %v", id, key, err)
				return
			}
			ver, verr := membuf.Verify(v)
			if verr != nil {
				s.fail("reader %d: torn read of %s: %v", id, key, verr)
				return
			}
			if ver < last[key] {
				s.fail("reader %d: %s version regressed %d after %d", id, key, ver, last[key])
				return
			}
			last[key] = ver
			s.reads.Add(1)
		}
	}
}

// runDirChurn is the log-exhaustion scenario: a shrunk directory
// ceiling forces compaction epochs continuously while yield, stall and
// crash faults fire on a deterministic schedule. Writes must keep
// succeeding (auto-compaction absorbs the churn), every injected crash
// must be recoverable by one repair compaction, and readers must never
// observe a torn value or a version regression.
func runDirChurn(seed uint64, duration time.Duration) int {
	restore := regmap.SetDirCapacity(1024)
	defer restore()
	sched, err := fault.NewSchedule(seed,
		fault.Rule{Point: regmap.FaultValuePublish, Kind: fault.Yield, Every: 64},
		fault.Rule{Point: regmap.FaultDirPublish, Kind: fault.Yield, Every: 64},
		fault.Rule{Point: regmap.FaultSlotStore, Kind: fault.Yield, Every: 64},
		fault.Rule{Point: regmap.FaultCompactPublish, Kind: fault.Yield, Every: 8},
		fault.Rule{Point: regmap.FaultDirPrepublish, Kind: fault.Stall, Every: 4096, Stall: 50 * time.Microsecond},
		fault.Rule{Point: regmap.FaultDeleteRecycle, Kind: fault.Crash, Every: 997},
		fault.Rule{Point: regmap.FaultDirPrepublish, Kind: fault.Crash, Every: 1499},
		fault.Rule{Point: regmap.FaultCompactBuilt, Kind: fault.Crash, Every: 23},
	)
	if err != nil {
		fmt.Println("arcstress: dirchurn:", err)
		return 2
	}
	m, err := regmap.New(regmap.Config{Shards: 2, MaxReaders: 4, MaxValueSize: 64})
	if err != nil {
		fmt.Println("arcstress: dirchurn:", err)
		return 2
	}
	const nkeys = 16
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("churn-%02d", i)
	}
	s := &mapChaos{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		body := chaosReader(s, m, i, seed, keys, false)
		wg.Add(1)
		go func() { defer wg.Done(); body() }()
	}
	sched.Arm()
	// Writer: versioned sets with a rolling delete/recreate pattern.
	// Each operation may crash at an armed point; recovery is always
	// the same — compact, which republishes the writer's tables.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		var version uint64
		var round uint64
		for !s.stop.Load() {
			round++
			key := keys[round%nkeys]
			version++
			membuf.Encode(buf, version)
			if err, crashed := recoverCrashed(s, func() error { return m.Set(key, buf) }); crashed {
				repairCompact(s, m)
				continue
			} else if err != nil {
				s.fail("writer: Set(%s): %v", key, err)
				return
			}
			s.writes.Add(1)
			// Delete-heavy cadence: only creations and tombstones append
			// to the directory log, so recycling every other round is
			// what actually drives the ceiling and its compactions.
			if round%2 == 0 {
				victim := keys[(round/2)%nkeys]
				if err, crashed := recoverCrashed(s, func() error { return m.Delete(victim) }); crashed {
					repairCompact(s, m)
				} else if err != nil && !errors.Is(err, regmap.ErrKeyNotFound) {
					s.fail("writer: Delete(%s): %v", victim, err)
					return
				}
			}
		}
	}()
	time.Sleep(duration)
	s.stop.Store(true)
	wg.Wait()
	sched.Disarm()
	ws := m.WriteStats()
	if ws.Compactions < 10 {
		s.fail("only %d compaction epochs under ceiling churn, want >= 10", ws.Compactions)
	}
	if s.crashes.Load() == 0 {
		s.fail("crash schedule never fired (writes=%d)", s.writes.Load())
	}
	return s.report("dirchurn", fmt.Sprintf(", %d compactions, %d dir bytes", ws.Compactions, ws.DirBytes))
}

// runCorruptRepair injects corrupt directory publications on a schedule
// and requires the full repair story: spinning readers latch with
// ErrShardCorrupt while the shard is quiet, a parked watcher observes
// the episode without dying, and one compaction epoch restores
// everyone — including the watcher, which must deliver post-repair
// values.
func runCorruptRepair(seed uint64, duration time.Duration) int {
	m, err := regmap.New(regmap.Config{Shards: 2, MaxReaders: 5, MaxValueSize: 64})
	if err != nil {
		fmt.Println("arcstress: corrupt-repair:", err)
		return 2
	}
	const stable = "stable"
	keys := []string{stable, "peer-0", "peer-1", "peer-2"}
	var version atomic.Uint64
	set := func(key string) error {
		b := make([]byte, 64)
		membuf.Encode(b, version.Add(1))
		return m.Set(key, b)
	}
	for _, k := range keys {
		if err := set(k); err != nil {
			fmt.Println("arcstress: corrupt-repair:", err)
			return 2
		}
	}
	s := &mapChaos{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		body := chaosReader(s, m, i, seed, keys, true)
		wg.Add(1)
		go func() { defer wg.Done(); body() }()
	}
	// Parked watcher on the stable key: corruption must degrade its
	// stream (one episode event), never end it, and repaired values
	// must keep flowing with monotone versions.
	wrd, err := m.NewReader()
	if err != nil {
		fmt.Println("arcstress: corrupt-repair:", err)
		return 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	var lastWatched atomic.Uint64
	var watchEpisodes atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			s.repairs.Add(wrd.Stats().Repairs)
			wrd.Close()
		}()
		for v, err := range wrd.Watch(ctx, stable) {
			switch {
			case errors.Is(err, context.Canceled):
				return
			case errors.Is(err, regmap.ErrShardCorrupt):
				watchEpisodes.Add(1)
				s.episodes.Add(1)
			case err != nil:
				s.fail("watcher: %v", err)
				return
			default:
				ver, verr := membuf.Verify(v)
				if verr != nil {
					s.fail("watcher: torn value: %v", verr)
					return
				}
				if prev := lastWatched.Load(); ver < prev {
					s.fail("watcher: version regressed %d after %d", ver, prev)
					return
				}
				lastWatched.Store(ver)
			}
		}
	}()
	// Writer churn behind a mutex the chaos loop can seize: shards are
	// single-writer, so injection and repair compaction (both publisher
	// operations) must hold the writer role — and an injection window
	// must be quiet anyway, since a corrupt publication only latches
	// readers until the next genuine publish.
	var wmu sync.Mutex
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		var round uint64
		for !s.stop.Load() {
			round++
			key := keys[round%uint64(len(keys))]
			wmu.Lock()
			err := set(key)
			wmu.Unlock()
			if err != nil {
				s.fail("writer: Set(%s): %v", key, err)
				return
			}
			s.writes.Add(1)
		}
	}()
	deadline := time.Now().Add(duration)
	injections := 0
	for time.Now().Before(deadline) && s.failures.Load() == 0 {
		time.Sleep(20 * time.Millisecond)
		wmu.Lock()
		before := s.episodes.Load()
		if err := m.InjectDirectoryCorruption(m.ShardOf(stable)); err != nil {
			s.fail("inject: %v", err)
			wmu.Unlock()
			break
		}
		injections++
		// With the writer held off, the spinning readers must latch.
		latched := false
		for wait := time.Now().Add(500 * time.Millisecond); time.Now().Before(wait); {
			if s.episodes.Load() > before {
				latched = true
				break
			}
			time.Sleep(time.Millisecond)
		}
		if !latched {
			s.fail("injection %d: no reader latched ErrShardCorrupt within 500ms", injections)
			wmu.Unlock()
			break
		}
		// One compaction epoch is the repair.
		if err := m.Compact(); err != nil {
			s.fail("repair compaction: %v", err)
			wmu.Unlock()
			break
		}
		wmu.Unlock()
	}
	// Quiesce the writer (shards are single-writer: the final Set below
	// must not race the churn goroutine), then prove the watcher
	// resumed: a final publication must reach it through however many
	// episodes it absorbed.
	s.stop.Store(true)
	writerWg.Wait()
	final := version.Load() + 1
	fb := make([]byte, 64)
	membuf.Encode(fb, final)
	version.Store(final)
	if err := m.Set(stable, fb); err != nil {
		s.fail("final Set: %v", err)
	}
	delivered := false
	for wait := time.Now().Add(2 * time.Second); time.Now().Before(wait); {
		if lastWatched.Load() >= final {
			delivered = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !delivered {
		s.fail("watcher never delivered the post-repair value (saw %d, want >= %d)", lastWatched.Load(), final)
	}
	cancel()
	wg.Wait()
	if injections == 0 {
		s.fail("duration too short: no corruption injected")
	}
	if s.repairs.Load() == 0 {
		s.fail("no reader counted a repair across %d injections", injections)
	}
	return s.report("corrupt-repair",
		fmt.Sprintf(", %d injections, %d watcher episodes", injections, watchEpisodes.Load()))
}

// runCompactUnderWatch parks a watcher on one key and drives ≥10
// compaction epochs underneath it with sibling-key churn against a
// shrunk ceiling. Epoch bumps must be invisible to the watcher (no
// spurious deliveries — every event is a genuinely newer version), and
// the final publication must arrive.
func runCompactUnderWatch(seed uint64, duration time.Duration) int {
	restore := regmap.SetDirCapacity(1024)
	defer restore()
	m, err := regmap.New(regmap.Config{Shards: 1, MaxReaders: 3, MaxValueSize: 64})
	if err != nil {
		fmt.Println("arcstress: compact-under-watch:", err)
		return 2
	}
	const watched = "watched"
	siblings := make([]string, 8)
	for i := range siblings {
		siblings[i] = fmt.Sprintf("sibling-%d", i)
	}
	var version uint64
	set := func(key string) error {
		b := make([]byte, 64)
		version++
		membuf.Encode(b, version)
		return m.Set(key, b)
	}
	if err := set(watched); err != nil {
		fmt.Println("arcstress: compact-under-watch:", err)
		return 2
	}
	s := &mapChaos{}
	body := chaosReader(s, m, 0, seed, append([]string{watched}, siblings...), false)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); body() }()
	wrd, err := m.NewReader()
	if err != nil {
		fmt.Println("arcstress: compact-under-watch:", err)
		return 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	var lastWatched atomic.Uint64
	var deliveries atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer wrd.Close()
		for v, err := range wrd.Watch(ctx, watched) {
			if errors.Is(err, context.Canceled) {
				return
			}
			if err != nil {
				s.fail("watcher: %v", err) // the key is never deleted, shards never corrupted
				return
			}
			ver, verr := membuf.Verify(v)
			if verr != nil {
				s.fail("watcher: torn value: %v", verr)
				return
			}
			if prev := lastWatched.Load(); ver <= prev && deliveries.Load() > 0 {
				s.fail("watcher: spurious delivery: version %d after %d (compaction epochs must be invisible)", ver, prev)
				return
			}
			lastWatched.Store(ver)
			deliveries.Add(1)
		}
	}()
	deadline := time.Now().Add(duration)
	var round uint64
	for time.Now().Before(deadline) && s.failures.Load() == 0 {
		round++
		key := siblings[round%uint64(len(siblings))]
		if err := set(key); err != nil {
			s.fail("writer: Set(%s): %v", key, err)
			break
		}
		s.writes.Add(1)
		if round%2 == 0 {
			victim := siblings[(round/2)%uint64(len(siblings))]
			if err := m.Delete(victim); err != nil && !errors.Is(err, regmap.ErrKeyNotFound) {
				s.fail("writer: Delete(%s): %v", victim, err)
				break
			}
		}
		if round%500 == 0 {
			if err := set(watched); err != nil {
				s.fail("writer: Set(%s): %v", watched, err)
				break
			}
			s.writes.Add(1)
		}
	}
	final := version + 1
	fb := make([]byte, 64)
	membuf.Encode(fb, final)
	if err := m.Set(watched, fb); err != nil {
		s.fail("final Set: %v", err)
	}
	delivered := false
	for wait := time.Now().Add(2 * time.Second); time.Now().Before(wait); {
		if lastWatched.Load() >= final {
			delivered = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !delivered {
		s.fail("watcher missed the final value across compactions (saw %d, want >= %d)", lastWatched.Load(), final)
	}
	s.stop.Store(true)
	cancel()
	wg.Wait()
	ws := m.WriteStats()
	if ws.Compactions < 10 {
		s.fail("only %d compaction epochs under the watcher, want >= 10", ws.Compactions)
	}
	return s.report("compact-under-watch",
		fmt.Sprintf(", %d compactions, %d watch deliveries", ws.Compactions, deliveries.Load()))
}

// runWatchStorm is the backpressure-telemetry scenario: deliberately
// slow watchers park through a fast-churning single-shard map while
// stall injection on the notify sequencer's publish/wake crossing
// (notify/publish-epoch, notify/wake-swap) widens the lost-wakeup
// window the protocol's arm-then-recheck discipline must close. A
// stats walker hammers Map.Stats throughout. The run fails if:
//
//   - any live watcher's ledger ever shows observed > published (the
//     backpressure invariant a torn collect could invert);
//   - any Map.Stats snapshot tears across a compaction (per-shard
//     cgen != compactions);
//   - a watcher observes a torn value or a version regression;
//   - the storm produced no conflation or no wakeups (the scenario
//     failed to generate backpressure), the schedule never fired, or
//     churn forced no compaction epoch.
func runWatchStorm(seed uint64, duration time.Duration) int {
	restore := regmap.SetDirCapacity(1024)
	defer restore()
	sched, err := fault.NewSchedule(seed,
		fault.Rule{Point: notify.FaultPublishEpoch, Kind: fault.Stall, Every: 512, Stall: 100 * time.Microsecond},
		fault.Rule{Point: notify.FaultWakeSwap, Kind: fault.Stall, Every: 64, Stall: 100 * time.Microsecond},
	)
	if err != nil {
		fmt.Println("arcstress: watchstorm:", err)
		return 2
	}
	m, err := regmap.New(regmap.Config{Shards: 1, MaxReaders: 6, MaxValueSize: 64})
	if err != nil {
		fmt.Println("arcstress: watchstorm:", err)
		return 2
	}
	watched := []string{"storm-0", "storm-1", "storm-2"}
	churn := []string{"churn-0", "churn-1", "churn-2", "churn-3"}
	var version uint64
	set := func(key string) error {
		b := make([]byte, 64)
		version++
		membuf.Encode(b, version)
		return m.Set(key, b)
	}
	for _, k := range watched {
		if err := set(k); err != nil {
			fmt.Println("arcstress: watchstorm:", err)
			return 2
		}
	}
	s := &mapChaos{}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup

	// Slow watchers: each parks on one key and spends a millisecond
	// "processing" every delivery — against a back-to-back writer that
	// guarantees conflation and a live mid-storm lag signal.
	for i, key := range watched {
		wrd, err := m.NewReader()
		if err != nil {
			fmt.Println("arcstress: watchstorm:", err)
			cancel()
			return 2
		}
		wg.Add(1)
		go func(id int, key string, wrd *regmap.Reader) {
			defer wg.Done()
			defer wrd.Close()
			var last uint64
			for v, err := range wrd.Watch(ctx, key) {
				if errors.Is(err, context.Canceled) {
					return
				}
				if err != nil {
					s.fail("watcher %d: %v", id, err) // keys are never deleted, shards never corrupted
					return
				}
				ver, verr := membuf.Verify(v)
				if verr != nil {
					s.fail("watcher %d: torn value: %v", id, verr)
					return
				}
				if ver < last {
					s.fail("watcher %d: version regressed %d after %d", id, ver, last)
					return
				}
				last = ver
				s.reads.Add(1)
				time.Sleep(time.Millisecond) // the slow consumer
			}
		}(i, key, wrd)
	}

	// Stats walker: every Map.Stats must be internally consistent and
	// every live ledger must satisfy observed ≤ published, while the
	// storm runs.
	var walks atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !s.stop.Load() {
			sn := m.Stats()
			node := sn.Child("shard0")
			if node == nil {
				s.fail("walker: stats lost shard0")
				return
			}
			cgen, _ := node.Get("cgen")
			comp, _ := node.Get("compactions")
			if cgen != comp {
				s.fail("walker: torn stats: cgen %d != compactions %d", cgen, comp)
				return
			}
			m.WatchTracker().Each(func(ws *notify.WatchStats) {
				if o, p := ws.Observed(), ws.Published(); o > p {
					s.fail("walker: ledger inverted: observed %d > published %d", o, p)
				}
			})
			walks.Add(1)
		}
	}()

	sched.Arm()
	// Writer: back-to-back sets on the watched keys (the storm) plus
	// delete/recreate churn that overflows the shrunk ceiling and
	// forces compaction epochs under the walker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var round uint64
		for _, k := range churn {
			if err := set(k); err != nil {
				s.fail("writer: Set(%s): %v", k, err)
				return
			}
		}
		for !s.stop.Load() {
			round++
			if err := set(watched[round%uint64(len(watched))]); err != nil {
				s.fail("writer: %v", err)
				return
			}
			s.writes.Add(1)
			if round%8 == 0 {
				victim := churn[(round/8)%uint64(len(churn))]
				if err := m.Delete(victim); err != nil && !errors.Is(err, regmap.ErrKeyNotFound) {
					s.fail("writer: Delete(%s): %v", victim, err)
					return
				}
				if err := set(victim); err != nil {
					s.fail("writer: %v", err)
					return
				}
			}
		}
	}()

	time.Sleep(duration)
	s.stop.Store(true)
	cancel()
	wg.Wait()
	sched.Disarm()

	// The retired ledgers carry the storm's totals.
	tsn := m.WatchTracker().Stats()
	conflated, _ := tsn.Get("conflated")
	wakeups, _ := tsn.Get("wakeups")
	if conflated == 0 {
		s.fail("storm conflated nothing across %d writes", s.writes.Load())
	}
	if wakeups == 0 {
		s.fail("watchers parked through the storm without a wakeup")
	}
	if walks.Load() == 0 {
		s.fail("stats walker never completed a snapshot")
	}
	if sched.Fired() == 0 {
		s.fail("notify fault schedule never fired (writes=%d)", s.writes.Load())
	}
	ws := m.WriteStats()
	if ws.Compactions == 0 {
		s.fail("churn forced no compaction epoch under the walker")
	}
	return s.report("watchstorm",
		fmt.Sprintf(", %d conflated, %d wakeups, %d stats walks, %d faults fired, %d compactions",
			conflated, wakeups, walks.Load(), sched.Fired(), ws.Compactions))
}

// checkFaultCoverage fails the run if any regmap, notify, serve or
// trace fault point was never armed by a schedule during this process —
// a registered-but-dead injection point is a hole in the chaos surface.
func checkFaultCoverage() int {
	armed, unarmed := fault.Coverage()
	var dead []string
	for _, name := range unarmed {
		if strings.HasPrefix(name, "regmap/") || strings.HasPrefix(name, "notify/") ||
			strings.HasPrefix(name, "serve/") || strings.HasPrefix(name, "trace/") {
			dead = append(dead, name)
		}
	}
	if len(dead) > 0 {
		fmt.Printf("arcstress: fault coverage: %d fault points never armed: %s\n",
			len(dead), strings.Join(dead, ", "))
		return 1
	}
	fmt.Printf("arcstress: fault coverage: all regmap, notify, serve and trace points armed (%d total armed)\n", len(armed))
	return 0
}
