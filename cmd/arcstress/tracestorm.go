package main

// tracestorm: the flight-recorder chaos scenario. The recorder's whole
// claim is that it can run always-on inside the single-writer domains
// without perturbing them, while walkers snapshot live rings the owners
// are concurrently overwriting. This scenario attacks exactly that seam:
//
//   - trace/ring-publish is armed (yield + stall) between an owner's
//     payload stores and its head publication — the window the seqlock
//     argument says a walker must detect and discard, held open
//     deliberately;
//   - serve/slow-client stalls SSE frame writes so watch sessions
//     conflate and their lanes record drops;
//   - a live walker continuously reconstructs spans, computes stage
//     breakdowns, renders JSON, and scrapes /debug/trace and /metricz
//     over the wire while every ring owner keeps recording.
//
// Online invariants: every reconstructed span's events are in TS order
// with valid stages and a positive stamp; every SSE frame verifies
// (torn-read detection); the HTTP trace and metrics endpoints answer
// 200 with well-formed bodies throughout. Post-storm, every pipeline
// stage — publish, cascade, wake, conflate, flush — must have recorded
// events, proving the stamp threaded the whole publish→deliver path
// under fault injection.

import (
	"bufio"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arcreg/internal/fault"
	"arcreg/internal/membuf"
	"arcreg/internal/regmap"
	"arcreg/internal/serve"
	"arcreg/internal/trace"
)

func runTraceStorm(seed uint64, duration time.Duration) int {
	sched, err := fault.NewSchedule(seed,
		fault.Rule{Point: trace.FaultRingPublish, Kind: fault.Yield, Every: 3},
		fault.Rule{Point: trace.FaultRingPublish, Kind: fault.Stall, Every: 257, Stall: 50 * time.Microsecond},
		fault.Rule{Point: serve.FaultSlowClient, Kind: fault.Stall, Every: 4, Stall: 200 * time.Microsecond},
	)
	if err != nil {
		fmt.Println("arcstress: tracestorm:", err)
		return 2
	}
	m, err := regmap.New(regmap.Config{
		Shards:          2,
		MaxReaders:      16,
		MaxValueSize:    64,
		Trace:           true,
		TraceRingEvents: 256,
		TraceLanes:      8,
	})
	if err != nil {
		fmt.Println("arcstress: tracestorm:", err)
		return 2
	}
	srv, err := serve.New(serve.Config{Map: m, Readers: 4, WatchStreams: 8, QueueDepth: 64})
	if err != nil {
		fmt.Println("arcstress: tracestorm:", err)
		return 2
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("arcstress: tracestorm:", err)
		return 2
	}
	hs := &http.Server{Handler: srv, ConnState: srv.ConnState}
	go hs.Serve(serve.Listener(ln))
	base := "http://" + ln.Addr().String()

	runtime.GC()
	baseline := runtime.NumGoroutine()

	runCtx, runCancel := context.WithCancel(context.Background())
	defer runCancel()

	const stable = "stable"
	keys := []string{stable, "churn-0", "churn-1"}
	s := &mapChaos{}
	var version atomic.Uint64
	transport := &http.Transport{MaxIdleConnsPerHost: 16}
	client := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	var wg sync.WaitGroup
	sched.Arm()

	// Writer: versioned values through the shard writer queues, every
	// publish stamping a new span at the origin.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		var round uint64
		for !s.stop.Load() {
			round++
			membuf.Encode(buf, version.Add(1))
			if err := srv.Set(keys[round%uint64(len(keys))], buf); err != nil {
				s.fail("writer: %v", err)
				return
			}
			s.writes.Add(1)
			if round%64 == 0 {
				time.Sleep(time.Millisecond) // let watchers park so wakes record
			}
		}
	}()

	// Slow SSE watchers: each drains a handful of frames with a
	// deliberate per-frame delay (on top of the armed slow-client
	// stalls), forcing conflation, then vanishes and reconnects. Every
	// frame must verify — a recorder bug that perturbed its owner would
	// surface here as a torn value.
	var streamEvents atomic.Uint64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !s.stop.Load() {
				ctx, cancel := context.WithCancel(runCtx)
				req, err := http.NewRequestWithContext(ctx, "GET", base+"/watch/"+stable+"?b64=1", nil)
				if err != nil {
					cancel()
					s.fail("watcher %d: %v", id, err)
					return
				}
				resp, err := client.Do(req)
				if err != nil {
					cancel()
					continue
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					cancel()
					time.Sleep(time.Millisecond)
					continue
				}
				br := bufio.NewReader(resp.Body)
				for e := 0; e < 8 && !s.stop.Load(); e++ {
					data, err := readServeSSE(br)
					if err != nil {
						break
					}
					raw, derr := base64.StdEncoding.DecodeString(data)
					if derr != nil {
						s.fail("watcher %d: bad b64 frame: %v", id, derr)
						cancel()
						resp.Body.Close()
						return
					}
					if _, verr := membuf.Verify(raw); verr != nil {
						s.fail("watcher %d: torn streamed value: %v", id, verr)
						cancel()
						resp.Body.Close()
						return
					}
					streamEvents.Add(1)
					time.Sleep(time.Duration(1+id) * time.Millisecond) // the slow client
				}
				cancel()
				resp.Body.Close()
			}
		}(w)
	}

	// Live trace walker: reconstruct spans and render the trace surface
	// continuously while every ring owner records against it. The head
	// re-validation (seqlock) argument is on trial here — under -race
	// and with ring-publish stalls holding the torn window open.
	var walks, scrapes atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr := m.Tracer()
		if tr == nil {
			s.fail("walker: traced map has nil Tracer")
			return
		}
		for !s.stop.Load() {
			for _, sp := range tr.Spans(32) {
				if sp.Stamp <= 0 {
					s.fail("walker: span with non-positive stamp %d", sp.Stamp)
					return
				}
				var lastTS int64
				for _, ev := range sp.Events {
					if ev.Stage == trace.StageNone || ev.Stage >= trace.NumStages {
						s.fail("walker: span %d has invalid stage %d", sp.Stamp, ev.Stage)
						return
					}
					if ev.TS < lastTS {
						s.fail("walker: span %d events out of TS order (%d after %d)", sp.Stamp, ev.TS, lastTS)
						return
					}
					lastTS = ev.TS
				}
			}
			tr.Breakdown()
			tr.WriteJSON(io.Discard, 16)
			walks.Add(1)

			// Every few passes, scrape the wire surfaces too.
			if walks.Load()%8 == 0 {
				for _, path := range []string{"/debug/trace?spans=8", "/metricz"} {
					resp, err := client.Get(base + path)
					if err != nil {
						continue
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						s.fail("walker: GET %s: status %d", path, resp.StatusCode)
						return
					}
					if path == "/metricz" && !strings.Contains(string(body), "arcreg_") {
						s.fail("walker: /metricz missing arcreg_ samples")
						return
					}
					scrapes.Add(1)
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	time.Sleep(duration)
	s.stop.Store(true)
	runCancel()
	wg.Wait()
	sched.Disarm()

	// Post-storm: the stamp must have threaded the entire pipeline.
	b := m.Tracer().Breakdown()
	for _, st := range []trace.Stage{trace.StagePublish, trace.StageCascade, trace.StageWake, trace.StageConflate, trace.StageFlush} {
		if b.Count[st] == 0 {
			s.fail("stage %s recorded no events through the storm", st)
		}
	}
	if sched.Fired() == 0 {
		s.fail("trace fault schedule never fired (writes=%d)", s.writes.Load())
	}
	if streamEvents.Load() == 0 {
		s.fail("watch streams delivered nothing through the storm")
	}
	if walks.Load() == 0 {
		s.fail("trace walker never completed a pass")
	}
	if scrapes.Load() == 0 {
		s.fail("no /debug/trace or /metricz scrape completed")
	}

	hs.Close()
	if err := srv.Close(); err != nil {
		s.fail("close: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		} else if time.Now().After(deadline) {
			s.fail("goroutine leak after close: %d, baseline %d", runtime.NumGoroutine(), baseline)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return s.report("tracestorm",
		fmt.Sprintf(", %d stream events, %d trace walks, %d scrapes, %d conflate drops, %d faults fired",
			streamEvents.Load(), walks.Load(), scrapes.Load(), b.ConflateDrops, sched.Fired()))
}
