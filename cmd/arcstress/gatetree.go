package main

// gatetree is the wakeup-tree chaos scenario: a seeded random tree
// topology (arity 2..64, depth 1..4, leaves capped at 4096) attached
// to one ARC register's publication sequencer, with the notify-layer
// fault points armed — yields and stalls inside the relay cascade
// (notify/tree-wake) and on the publisher's epoch/gate crossing
// (notify/publish-epoch, notify/wake-swap) — to widen every window the
// tree's arm-before-propagate discipline must keep closed. Against a
// back-to-back writer:
//
//   - parked watchers ride leaf subscriptions, re-subscribing on a
//     churn cadence, and verify every observation (torn-read check,
//     per-watcher version monotonicity, observed ≤ published);
//   - a ledger walker continuously asserts observed ≤ published on
//     every live backpressure ledger;
//   - churn workers subscribe/close leaves as fast as they can, so
//     relay lifecycles (spawn on 0→1, drain on 1→0, revival) race the
//     cascade under fault injection;
//   - at the end the writer publishes one final version that every
//     watcher must observe — the no-lost-wakeup gate — and every
//     relay helper must drain once the last subscription closes.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arcreg/internal/arc"
	"arcreg/internal/fault"
	"arcreg/internal/membuf"
	"arcreg/internal/notify"
	"arcreg/internal/register"
)

func runGateTree(seed uint64, duration time.Duration) int {
	// Seeded topology: depth first, then the widest arity whose
	// leaf count stays within the cap (mirrors the test battery's
	// randTopology).
	rng := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	depth := notify.MinFanDepth + int(next()%uint64(notify.MaxFanDepth-notify.MinFanDepth+1))
	arity := notify.MinFanArity + int(next()%uint64(notify.MaxFanArity-notify.MinFanArity+1))
	const leafCap = 4096
	leaves := func(a, d int) int {
		n := 1
		for i := 0; i < d; i++ {
			n *= a
		}
		return n
	}
	for arity > notify.MinFanArity && leaves(arity, depth) > leafCap {
		arity--
	}

	// One rule per point (a later rule for the same point replaces the
	// earlier): the tree-wake point alternates yield/stall by seed
	// parity so both failure shapes get CI exposure across seeds.
	treeRule := fault.Rule{Point: notify.FaultTreeWake, Kind: fault.Yield, Every: 3}
	if seed%2 == 0 {
		treeRule = fault.Rule{Point: notify.FaultTreeWake, Kind: fault.Stall, Every: 129, Stall: 100 * time.Microsecond}
	}
	sched, err := fault.NewSchedule(seed,
		treeRule,
		fault.Rule{Point: notify.FaultWakeSwap, Kind: fault.Yield, Every: 5},
		fault.Rule{Point: notify.FaultPublishEpoch, Kind: fault.Yield, Every: 7},
	)
	if err != nil {
		fmt.Println("arcstress: gatetree:", err)
		return 2
	}

	const (
		watchers = 6
		churners = 3
		size     = 64
	)
	reg, err := arc.New(register.Config{MaxReaders: watchers + 1, MaxValueSize: size}, arc.Options{})
	if err != nil {
		fmt.Println("arcstress: gatetree:", err)
		return 2
	}
	tree := reg.Notifier().Fan(arity, depth)

	s := &mapChaos{}
	track := &notify.Tracker{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	// published is advanced BEFORE the Write that carries it, so any
	// version a watcher observes is ≤ published at observation time.
	var published atomic.Uint64
	write := func() error {
		buf := make([]byte, size)
		membuf.Encode(buf, published.Add(1))
		return reg.Write(buf)
	}
	if err := write(); err != nil {
		fmt.Println("arcstress: gatetree:", err)
		return 2
	}

	sched.Arm()

	// Parked watchers: each rides leaf subscriptions through the tree,
	// re-subscribing every churnEvery deliveries so subscription
	// lifecycle races the cascade. lastSeen feeds the final-value gate.
	lastSeen := make([]atomic.Uint64, watchers)
	seq := reg.Notifier()
	for i := 0; i < watchers; i++ {
		rd, err := reg.NewReaderHandle()
		if err != nil {
			fmt.Println("arcstress: gatetree:", err)
			cancel()
			return 2
		}
		wg.Add(1)
		go func(id int, rd *arc.Reader) {
			defer wg.Done()
			defer rd.Close()
			ws := &notify.WatchStats{}
			track.Attach(ws)
			defer track.Detach(ws)
			sub := tree.Subscribe()
			defer func() { sub.Close() }()
			churnEvery := uint64(16 + id*8)
			var last, rounds uint64
			for {
				rounds++
				if rounds%churnEvery == 0 {
					sub.Close()
					sub = tree.Subscribe()
				}
				seen := seq.Epoch()
				ws.NoteSeen(seen)
				v, changed, err := rd.ViewFresh()
				if err != nil {
					s.fail("watcher %d: %v", id, err)
					return
				}
				if changed {
					ver, verr := membuf.Verify(v)
					if verr != nil {
						s.fail("watcher %d: torn value: %v", id, verr)
						return
					}
					if ver < last {
						s.fail("watcher %d: version regressed %d after %d", id, ver, last)
						return
					}
					if p := published.Load(); ver > p {
						s.fail("watcher %d: observed version %d > published %d", id, ver, p)
						return
					}
					last = ver
					lastSeen[id].Store(ver)
					s.reads.Add(1)
					ws.NoteDelivered(seen)
				} else {
					ws.NoteObserved(seen)
				}
				if _, err := notify.WaitEpoch(ctx, seq.Epoch, seen, ws, sub.Gate()); err != nil {
					if !errors.Is(err, context.Canceled) {
						s.fail("watcher %d: wait: %v", id, err)
					}
					return
				}
			}
		}(i, rd)
	}

	// Churn workers: pure subscribe/close pressure on random leaves,
	// exercising relay spawn/drain/revival against the live cascade.
	var churns atomic.Uint64
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !s.stop.Load() {
				sub := tree.Subscribe()
				sub.Gate().Arm() // park-shaped: leaf armed, then abandoned
				sub.Close()
				churns.Add(1)
			}
		}()
	}

	// Ledger walker: the backpressure invariant, continuously.
	var walks atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !s.stop.Load() {
			track.Each(func(ws *notify.WatchStats) {
				if o, p := ws.Observed(), ws.Published(); o > p {
					s.fail("walker: ledger inverted: observed %d > published %d", o, p)
				}
			})
			walks.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	// Writer: back-to-back publications for the window.
	writerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		for !s.stop.Load() {
			if err := write(); err != nil {
				s.fail("writer: %v", err)
				return
			}
			s.writes.Add(1)
		}
	}()

	time.Sleep(duration)
	s.stop.Store(true)
	<-writerDone

	// The no-lost-wakeup gate: one final publication after the storm
	// must reach every parked watcher.
	if err := write(); err != nil {
		s.fail("final write: %v", err)
	}
	final := published.Load()
	deadline := time.Now().Add(10 * time.Second)
	for w := 0; w < watchers; w++ {
		for lastSeen[w].Load() < final {
			if time.Now().After(deadline) {
				s.fail("watcher %d never observed the final value (saw %d, want %d) — lost wakeup",
					w, lastSeen[w].Load(), final)
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	wg.Wait()
	sched.Disarm()

	// Relay hygiene: every subscription is closed; the helpers must
	// drain (quiescent collection — nothing publishes anymore).
	drainBy := time.Now().Add(10 * time.Second)
	for tree.Relays() != 0 {
		if time.Now().After(drainBy) {
			s.fail("%d relay goroutines still running after all subscriptions closed", tree.Relays())
			break
		}
		time.Sleep(time.Millisecond)
	}

	tsn := track.Stats()
	wakeups, _ := tsn.Get("wakeups")
	if wakeups == 0 {
		s.fail("watchers parked through the storm without a wakeup")
	}
	if tree.Cascades() == 0 {
		s.fail("the cascade never ran (%d writes)", s.writes.Load())
	}
	if walks.Load() == 0 {
		s.fail("ledger walker never completed a pass")
	}
	if sched.Fired() == 0 {
		s.fail("fault schedule never fired (writes=%d, cascades=%d)", s.writes.Load(), tree.Cascades())
	}
	return s.report("gatetree",
		fmt.Sprintf(", tree %d^%d=%d leaves, %d cascades, %d leaf wakes, %d wakeups, %d sub churns, %d ledger walks, %d faults fired",
			arity, depth, tree.Leaves(), tree.Cascades(), tree.LeafWakes(), wakeups, churns.Load(), walks.Load(), sched.Fired()))
}
