// Command arcbench regenerates the ARC paper's evaluation (§5, Figures
// 1–3) plus the RMW-accounting and ablation experiments on the local
// machine.
//
// Regenerate a whole figure (one ASCII table per register size, the same
// series the paper plots):
//
//	arcbench -figure fig1
//	arcbench -figure fig2            # virtualized host: CPU-steal simulation
//	arcbench -figure fig3            # 1000–4000 threads, time-sharing
//	arcbench -figure processing      # §5's second workload
//	arcbench -figure ablation        # ARC vs its own disabled optimizations
//	arcbench -figure rmw             # RMW instructions per read, ARC vs RF vs (M,N)
//	arcbench -figure mn              # (M,N) composite: fresh-gated collect vs ablation
//	arcbench -figure serve           # HTTP loopback: GET req/s + publish→observe latency
//	arcbench -figure all             # everything above, in order
//
// Sweeps can be overridden (-threads, -sizes, -duration, -steal,
// -writers) and shrunk for smoke runs (-quick); explicit -threads/-sizes
// overrides win over the -quick caps. A single deployment can be
// measured directly:
//
//	arcbench -alg arc -threads 16 -size 32768 -duration 2s
//	arcbench -alg mn -writers 4 -nthreads 8 -size 4096
//
// Results go to stdout; -csv appends machine-readable rows to a file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"arcreg/internal/harness"
	"arcreg/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("arcbench", flag.ContinueOnError)
	var (
		figure    = fs.String("figure", "", "figure to regenerate: fig1|fig2|fig3|processing|ablation|extensions|mn|map|rmw|latency|watch|serve|all")
		alg       = fs.String("alg", "arc", "algorithm for single runs: arc|rf|peterson|lock|seqlock|leftright|mn|mn-nogate|map|arc-nofastpath|arc-nohint")
		threads   = fs.String("threads", "", "comma-separated thread counts (overrides the figure's sweep)")
		sizes     = fs.String("sizes", "", "comma-separated register sizes in bytes (overrides the sweep)")
		size      = fs.Int("size", 4096, "register size for single runs")
		nthreads  = fs.Int("nthreads", 4, "thread count for single runs (writers + readers)")
		writers   = fs.String("writers", "", "writer thread count(s): one value for single runs, a comma list sweeps M on the mn figure (e.g. 1,2,4,8)")
		mode      = fs.String("mode", "dummy", "workload: dummy|processing")
		duration  = fs.Duration("duration", time.Second, "measurement window per cell")
		warmup    = fs.Duration("warmup", 200*time.Millisecond, "warmup before each window")
		stealF    = fs.Float64("steal", -1, "CPU-steal fraction override (0..0.9; -1 keeps the figure default)")
		quick     = fs.Bool("quick", false, "shrink sweeps and windows for a smoke run")
		csvPath   = fs.String("csv", "", "also append CSV rows to this file")
		latency   = fs.Int("latency-sample", 0, "record every Nth op latency in single runs (0=off)")
		keys      = fs.String("keys", "", "comma-separated key counts for the map figure (overrides the sweep)")
		zipf      = fs.Float64("zipf", -1, "map figure key-popularity Zipf exponent (≤1 uniform; -1 keeps the default)")
		shards    = fs.Int("shards", 0, "map figure shard count (0 keeps the default)")
		delEvery  = fs.Int("delete-every", -1, "map figure delete-mix: every Nth writer op deletes/re-creates a lifecycle key (0 disables; -1 keeps the default)")
		snapEvery = fs.Int("snapshot-every", -1, "map figure snapshot mix: every Nth reader op takes a multi-key Snapshot (0 disables; -1 keeps the default)")
		watchers  = fs.String("watchers", "", "comma-separated watcher counts for the watch figure, k suffix = thousands (e.g. 1k,10k; overrides the sweep)")
		clients   = fs.String("clients", "", "comma-separated HTTP client counts for the serve figure (overrides the sweep)")
		pubEvery  = fs.Duration("publish-every", 0, "watch figure writer cadence (0 keeps the default)")
		fanArity  = fs.Int("fan-arity", -1, "watch figure wakeup-tree arity (0 drops the tree series; -1 keeps the default)")
		fanDepth  = fs.Int("fan-depth", -1, "watch figure wakeup-tree depth (-1 keeps the default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Fprintf(out, "arcbench: GOMAXPROCS=%d NumCPU=%d\n\n", runtime.GOMAXPROCS(0), runtime.NumCPU())

	writerList := mustInts(*writers)
	firstWriters := 0
	if len(writerList) > 0 {
		firstWriters = writerList[0]
	}

	if *figure == "" {
		return singleRun(out, *alg, *nthreads, firstWriters, *size, *mode, *duration, *warmup, *stealF, *latency)
	}

	ids := []string{*figure}
	if *figure == "all" {
		ids = []string{"fig1", "fig2", "fig3", "processing", "ablation", "extensions", "mn", "map", "rmw", "latency", "watch", "serve"}
	}
	var csv *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		csv = f
	}
	for _, id := range ids {
		if id == "rmw" {
			if err := runRMW(out, *threads, firstWriters, *size, *duration, *warmup, *quick); err != nil {
				return err
			}
			continue
		}
		if id == "latency" {
			if err := runLatency(out, *nthreads, *size, *stealF, *duration, *warmup, *quick); err != nil {
				return err
			}
			continue
		}
		if id == "map" {
			if err := runMapFigure(out, csv, *threads, *keys, *sizes, *shards, *delEvery, *snapEvery, *zipf, *stealF, *mode, *duration, *warmup, *quick); err != nil {
				return err
			}
			continue
		}
		if id == "watch" {
			if err := runWatchFigure(out, csv, *watchers, *sizes, *pubEvery, *fanArity, *fanDepth, *duration, *warmup, *quick); err != nil {
				return err
			}
			continue
		}
		if id == "serve" {
			if err := runServeFigure(out, csv, *clients, *sizes, *pubEvery, *duration, *warmup, *quick); err != nil {
				return err
			}
			continue
		}
		fig, err := harness.FigureByID(id)
		if err != nil {
			return err
		}
		fig = customize(fig, *threads, *sizes, writerList, *duration, *warmup, *stealF, *quick)
		progress := func(done, total int, c harness.Cell) {
			status := fmt.Sprintf("%.2f Mops/s", c.Result.Mops())
			if c.Err != nil {
				status = "n/a (" + c.Err.Error() + ")"
			}
			fmt.Fprintf(os.Stderr, "[%s %d/%d] %s threads=%d size=%d: %s\n",
				fig.ID, done, total, c.Algorithm, c.Threads, c.Size, status)
		}
		data, err := fig.Run(progress)
		if err != nil {
			return err
		}
		data.RenderTable(out)
		if csv != nil {
			data.RenderCSV(csv)
		}
	}
	return nil
}

// customize applies CLI overrides to a figure definition. Explicit
// -threads/-sizes/-duration/-warmup win over -quick's shrinking (a 1-CPU
// host would otherwise clip an explicitly requested sweep).
func customize(fig harness.Figure, threads, sizes string, writers []int, duration, warmup time.Duration, stealF float64, quick bool) harness.Figure {
	if stealF >= 0 {
		fig.StealFraction = stealF
	}
	// -writers only applies to figures that sweep multiple writers (the
	// MN figure); forcing it onto the (1,N) figures would fail every
	// cell, which matters for `-figure all -writers N`. A single value
	// replaces the figure's M; a list turns M into a sweep axis.
	if len(writers) > 0 && fig.Writers > 0 {
		if len(writers) == 1 {
			fig.Writers = writers[0]
			fig.WriterCounts = nil
		} else {
			fig.WriterCounts = writers
		}
	}
	if quick {
		maxTh := 2 * runtime.NumCPU()
		if fig.ID == "fig3" {
			maxTh = 64
			fig.Threads = []int{16, 32, 64}
		}
		fig = fig.Scale(maxTh, 0, 0)
		if maxW := maxWriters(fig); maxW > 1 {
			// Keep at least one reader beside the writers; goroutine
			// oversubscription is fine for a smoke run.
			fig.Threads = []int{maxW + 1, maxW + 4}
		}
		if len(fig.Sizes) > 2 {
			fig.Sizes = fig.Sizes[:2]
		}
		duration = min(duration, 200*time.Millisecond)
		warmup = min(warmup, 50*time.Millisecond)
	}
	fig.Duration = duration
	fig.Warmup = warmup
	if threads != "" {
		fig.Threads = mustInts(threads)
	}
	if sizes != "" {
		fig.Sizes = mustInts(sizes)
	}
	return fig
}

// maxWriters reports the largest writer count a figure will deploy.
func maxWriters(fig harness.Figure) int {
	m := fig.Writers
	for _, w := range fig.WriterCounts {
		if w > m {
			m = w
		}
	}
	return m
}

func runRMW(out io.Writer, threads string, writers, size int, duration, warmup time.Duration, quick bool) error {
	th := []int{2, 4, 8, 16, 32}
	if threads != "" {
		th = mustInts(threads)
	}
	if quick {
		if threads == "" {
			th = []int{2, 4}
		}
		duration = min(duration, 200*time.Millisecond)
		warmup = min(warmup, 50*time.Millisecond)
	}
	rep, err := harness.RunRMWComparison(th, size, duration, warmup)
	if err != nil {
		return err
	}
	rep.Render(out)

	// The (M,N) composite rows: fresh-gated collect vs ablation. Reuse
	// the thread sweep where it fits M writers + ≥1 reader, extending it
	// with a minimal feasible deployment otherwise.
	if writers <= 0 {
		writers = 4
	}
	var mnTh []int
	for _, t := range th {
		if t >= writers+1 {
			mnTh = append(mnTh, t)
		}
	}
	if len(mnTh) == 0 {
		mnTh = []int{writers + 1}
	}
	mnRep, err := harness.RunMNRMWComparison(mnTh, writers, size, duration, warmup)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n(M,N) composite, %d writers:\n", writers)
	mnRep.Render(out)
	return nil
}

// runMapFigure regenerates the keyed-workload figure (the regmap sharded
// snapshot map): thread sweep × key-count sweep, Zipf key popularity,
// with optional delete-mix (-delete-every) and snapshot (-snapshot-every)
// workloads. The shared -sizes and -steal overrides apply here too (the
// map figure measures one value size per run; the first -sizes entry
// wins).
func runMapFigure(out io.Writer, csv *os.File, threads, keys, sizes string, shards, delEvery, snapEvery int, zipf, stealF float64, mode string, duration, warmup time.Duration, quick bool) error {
	fig := harness.FigMap()
	m, err := workload.ParseMode(mode)
	if err != nil {
		return err
	}
	fig.Mode = m
	if shards > 0 {
		fig.Shards = shards
	}
	if delEvery >= 0 {
		fig.DeleteEvery = delEvery
	}
	if snapEvery >= 0 {
		fig.SnapshotEvery = snapEvery
	}
	if zipf >= 0 {
		fig.Zipf = zipf
	}
	if stealF >= 0 {
		fig.StealFraction = stealF
	}
	if sizes != "" {
		sz := mustInts(sizes)
		fig.ValueSize = sz[0]
		if len(sz) > 1 {
			fmt.Fprintf(os.Stderr, "arcbench: map figure measures one value size per run; using %d\n", sz[0])
		}
	}
	if quick {
		fig = fig.Scale(2*runtime.NumCPU(), min(duration, 200*time.Millisecond), min(warmup, 50*time.Millisecond))
	} else {
		fig.Duration = duration
		fig.Warmup = warmup
	}
	if threads != "" {
		fig.Threads = mustInts(threads)
	}
	if keys != "" {
		fig.Keys = mustInts(keys)
	}
	progress := func(done, total int, c harness.MapCell) {
		fmt.Fprintf(os.Stderr, "[%s %d/%d] keys=%d threads=%d: %.2f Mops/s (%.4f rmw/get)\n",
			fig.ID, done, total, c.Keys, c.Threads, c.Result.Mops(), c.Result.RMWPerGet())
	}
	data, err := fig.Run(progress)
	if err != nil {
		return err
	}
	data.RenderTable(out)
	if csv != nil {
		data.RenderCSV(csv)
	}
	return nil
}

// runWatchFigure regenerates the wakeup-latency figure: publish→observe
// latency of parked watchers vs fixed-interval pollers, swept over
// watcher counts (the notify subsystem's measurement; see DESIGN.md §8).
func runWatchFigure(out io.Writer, csv *os.File, watchers, sizes string, pubEvery time.Duration, fanArity, fanDepth int, duration, warmup time.Duration, quick bool) error {
	fig := harness.FigWatch()
	if pubEvery > 0 {
		fig.PublishEvery = pubEvery
	}
	if fanArity >= 0 {
		fig.FanArity = fanArity
	}
	if fanDepth >= 0 {
		fig.FanDepth = fanDepth
	}
	if sizes != "" {
		sz := mustInts(sizes)
		fig.ValueSize = sz[0]
		if len(sz) > 1 {
			fmt.Fprintf(os.Stderr, "arcbench: watch figure measures one value size per run; using %d\n", sz[0])
		}
	}
	if quick {
		fig = fig.Scale(4, min(duration, 200*time.Millisecond), min(warmup, 50*time.Millisecond))
	} else {
		fig.Duration = duration
		fig.Warmup = warmup
	}
	if watchers != "" {
		fig.Watchers = mustInts(watchers)
	}
	progress := func(done, total int, c harness.WatchCell) {
		fmt.Fprintf(os.Stderr, "[%s %d/%d] %s watchers=%d: %d observed, p99 %v, pub p99 %v, lag max %d, conflated %d\n",
			fig.ID, done, total, c.Series(), c.Watchers, c.Result.Observed,
			time.Duration(c.Result.Latency.Quantile(0.99)),
			time.Duration(c.Result.PubOverhead.Quantile(0.99)),
			c.Result.LagMax, c.Result.Conflated)
	}
	data, err := fig.Run(progress)
	if err != nil {
		return err
	}
	data.RenderTable(out)
	if csv != nil {
		data.RenderCSV(csv)
	}
	return nil
}

// runServeFigure regenerates the HTTP serving figure: a real arcserve
// server on a loopback listener, swept over concurrent GET client
// counts, reporting sustained req/s and publish→client-observe latency
// through the SSE watch path (see DESIGN.md §11).
func runServeFigure(out io.Writer, csv *os.File, clients, sizes string, pubEvery, duration, warmup time.Duration, quick bool) error {
	fig := harness.FigServe()
	if pubEvery > 0 {
		fig.PublishEvery = pubEvery
	}
	if sizes != "" {
		sz := mustInts(sizes)
		fig.ValueSize = sz[0]
		if len(sz) > 1 {
			fmt.Fprintf(os.Stderr, "arcbench: serve figure measures one value size per run; using %d\n", sz[0])
		}
	}
	if quick {
		fig = fig.Scale(2*runtime.NumCPU(), min(duration, 300*time.Millisecond), min(warmup, 50*time.Millisecond))
	} else {
		fig.Duration = duration
		fig.Warmup = warmup
	}
	if clients != "" {
		fig.Clients = mustInts(clients)
	}
	progress := func(done, total int, c harness.ServeCell) {
		fmt.Fprintf(os.Stderr, "[%s %d/%d] clients=%d: %.0f GET/s, get p99 %v, obs p99 %v, conflated %d\n",
			fig.ID, done, total, c.Clients, c.Result.Rate(),
			time.Duration(c.Result.GetLat.Quantile(0.99)),
			time.Duration(c.Result.ObsLat.Quantile(0.99)),
			c.Result.Conflated)
	}
	data, err := fig.Run(progress)
	if err != nil {
		return err
	}
	data.RenderTable(out)
	if csv != nil {
		data.RenderCSV(csv)
	}
	return nil
}

func runLatency(out io.Writer, threads, size int, stealF float64, duration, warmup time.Duration, quick bool) error {
	if quick {
		duration = 200 * time.Millisecond
		warmup = 50 * time.Millisecond
	}
	frac := 0.0
	if stealF > 0 {
		frac = stealF
	}
	algs := []harness.Algorithm{
		harness.AlgARC, harness.AlgRF, harness.AlgPeterson,
		harness.AlgLock, harness.AlgSeqlock, harness.AlgLeftRight,
		// The keyed store, measured through its single-key adapter (the
		// full directory-probe-then-value-read path), so map tail
		// latency is tracked alongside the raw algorithms.
		harness.AlgMap,
	}
	rep, err := harness.RunLatencyComparison(algs, threads, size, frac, duration, warmup)
	if err != nil {
		return err
	}
	rep.Render(out)
	return nil
}

func singleRun(out io.Writer, alg string, threads, writers, size int, mode string, duration, warmup time.Duration, stealF float64, latencySample int) error {
	a, err := harness.ParseAlgorithm(alg)
	if err != nil {
		return err
	}
	m, err := workload.ParseMode(mode)
	if err != nil {
		return err
	}
	if writers == 0 && a.IsMN() {
		writers = 4
	}
	cfg := harness.RunConfig{
		Algorithm:     a,
		Threads:       threads,
		Writers:       writers,
		ValueSize:     size,
		Mode:          m,
		Duration:      duration,
		Warmup:        warmup,
		LatencySample: latencySample,
	}
	if a.IsMN() && cfg.Threads < cfg.Writers+1 {
		cfg.Threads = cfg.Writers + 1
	}
	if stealF > 0 {
		cfg.StealFraction = stealF
	}
	res, err := harness.Run(cfg)
	if err != nil {
		return err
	}
	if cfg.Writers > 1 {
		fmt.Fprintf(out, "%s threads=%d writers=%d size=%d mode=%s steal=%.0f%%\n",
			a, cfg.Threads, cfg.Writers, size, m, cfg.StealFraction*100)
	} else {
		fmt.Fprintf(out, "%s threads=%d size=%d mode=%s steal=%.0f%%\n",
			a, cfg.Threads, size, m, cfg.StealFraction*100)
	}
	fmt.Fprintf(out, "  throughput: %s\n", res.Throughput())
	// Per-op ratios use the protocol counters for both numerator and
	// denominator: they cover the same operations (warmup included),
	// unlike the measured-window op counts.
	fmt.Fprintf(out, "  reads:  %d ops, %d RMW (%.4f/op), %d fast-path (%.1f%%)\n",
		res.ReadOps, res.ReadStat.RMW, safeDiv(res.ReadStat.RMW, res.ReadStat.Ops),
		res.ReadStat.FastPath, 100*safeDiv(res.ReadStat.FastPath, res.ReadStat.Ops))
	fmt.Fprintf(out, "  writes: %d ops, %d RMW, %d scan steps (%.2f/op), %d hint hits\n",
		res.WriteOps, res.WriteStat.RMW, res.WriteStat.ScanSteps,
		safeDiv(res.WriteStat.ScanSteps, res.WriteStat.Ops), res.WriteStat.HintHits)
	if res.Steal.Steals > 0 {
		fmt.Fprintf(out, "  steal:  %d events, %v stolen\n", res.Steal.Steals, res.Steal.Stolen)
	}
	if res.ReadLat.Count() > 0 {
		fmt.Fprintf(out, "  read latency:  %s\n", res.ReadLat.String())
		fmt.Fprintf(out, "  write latency: %s\n", res.WriteLat.String())
	}
	return nil
}

func safeDiv(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func mustInts(csv string) []int {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		// Accept a k/K suffix for thousands (1k = 1000, 10k = 10000) —
		// the watcher sweeps are quoted that way.
		mult := 1
		if s := strings.TrimRight(part, "kK"); len(s) == len(part)-1 {
			part, mult = s, 1000
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arcbench: bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, n*mult)
	}
	return out
}
