package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleRunOutput(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-alg", "arc", "-nthreads", "3", "-size", "512",
		"-duration", "40ms", "-warmup", "10ms", "-latency-sample", "32",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"throughput:", "reads:", "writes:", "fast-path", "read latency:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureQuickWithCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "out.csv")
	var sb strings.Builder
	err := run([]string{
		"-figure", "fig1", "-quick",
		"-threads", "2,3", "-sizes", "256",
		"-duration", "30ms", "-warmup", "5ms",
		"-csv", csv,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig1") {
		t.Fatalf("missing table header:\n%s", sb.String())
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(blob), "figure,size,threads,algorithm") {
		t.Fatalf("csv header wrong: %q", string(blob)[:60])
	}
	lines := strings.Count(strings.TrimSpace(string(blob)), "\n")
	if lines != 8 { // 2 threads × 1 size × 4 algorithms
		t.Fatalf("csv data lines = %d, want 8", lines)
	}
}

func TestRMWFigure(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-figure", "rmw", "-threads", "2", "-size", "256",
		"-duration", "30ms", "-warmup", "5ms", "-writers", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rmw/read") {
		t.Fatalf("missing rmw table:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "mn-nogate") {
		t.Fatalf("missing MN rmw rows:\n%s", sb.String())
	}
}

func TestMNFigureQuick(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-figure", "mn", "-quick", "-sizes", "256",
		"-duration", "30ms", "-warmup", "5ms"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== mn:", "writers=4", "mn-nogate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mn figure output missing %q:\n%s", want, out)
		}
	}
}

func TestMNSingleRun(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "mn", "-writers", "2", "-nthreads", "4",
		"-size", "256", "-duration", "40ms", "-warmup", "10ms"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mn threads=4 writers=2", "reads:", "writes:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mn single-run output missing %q:\n%s", want, out)
		}
	}
}

func TestMNWriterSweep(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-figure", "mn", "-writers", "1,2", "-threads", "3",
		"-sizes", "256", "-duration", "20ms", "-warmup", "5ms"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"writers=1,2", " M", "mn-nogate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mn writer sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestMapFigureQuick(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "map.csv")
	var sb strings.Builder
	err := run([]string{"-figure", "map", "-quick", "-threads", "2", "-keys", "8",
		"-duration", "30ms", "-warmup", "5ms", "-csv", csv}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== map:", "rmw/get", "keys"} {
		if !strings.Contains(out, want) {
			t.Fatalf("map figure output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(blob), "figure,keys,threads,mops") {
		t.Fatalf("map csv header wrong: %q", string(blob))
	}
}

func TestMapSingleRun(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "map", "-nthreads", "2", "-size", "256",
		"-duration", "30ms", "-warmup", "5ms"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "map threads=2") {
		t.Fatalf("map single-run output:\n%s", sb.String())
	}
}

func TestLatencyFigure(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-figure", "latency", "-quick", "-nthreads", "3", "-size", "256"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "read p99") {
		t.Fatalf("missing latency table:\n%s", sb.String())
	}
}

func TestBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "fig9"}, &sb); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-alg", "bogus"}, &sb); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-mode", "bogus", "-alg", "arc"}, &sb); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestMustInts(t *testing.T) {
	got := mustInts("1, 2,3 ,")
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("mustInts = %v", got)
	}
	got = mustInts("1k, 10K,25")
	if len(got) != 3 || got[0] != 1000 || got[1] != 10000 || got[2] != 25 {
		t.Fatalf("mustInts with k suffix = %v", got)
	}
}

// TestWatchFigureQuick smoke-runs the watch figure through the CLI and
// checks the backpressure columns reach the CSV: with the default slow
// consumer, the watch series must conflate publications.
func TestWatchFigureQuick(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "watch.csv")
	var sb strings.Builder
	err := run([]string{"-figure", "watch", "-quick", "-watchers", "2",
		"-duration", "150ms", "-warmup", "20ms", "-csv", csv}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"wakeup latency", "lag max", "conflated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("watch figure output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "lag_p50,lag_max,conflated,wakeups") {
		t.Fatalf("watch csv header missing backpressure columns: %q",
			strings.SplitN(string(blob), "\n", 2)[0])
	}
	// The watch series row (first data row) must show conflation: its
	// slow consumer parks through a fast publish cadence.
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) < 2 {
		t.Fatalf("no csv rows:\n%s", string(blob))
	}
	fields := strings.Split(lines[1], ",")
	if len(fields) != 19 {
		t.Fatalf("csv row has %d fields, want 19: %q", len(fields), lines[1])
	}
	if fields[12] == "0" {
		t.Errorf("watch series conflated nothing: %q", lines[1])
	}
	// Publisher-overhead columns (appended after wakeups) must carry
	// real samples in the measured window.
	if fields[15] == "0" {
		t.Errorf("watch series recorded no publisher overhead: %q", lines[1])
	}
	// Flight-recorder stage columns: the traced watch series must show
	// cascade latency samples (fan tree wired through the recorder).
	if !strings.Contains(string(blob), "cascade_p99_ns,conflate_drops,flush_p99_ns") {
		t.Fatalf("watch csv header missing stage-breakdown columns: %q",
			strings.SplitN(string(blob), "\n", 2)[0])
	}
	if fields[16] == "0" {
		t.Errorf("watch series recorded no cascade latency: %q", lines[1])
	}
}
