// Command arccheck stress-tests a register implementation for atomicity —
// the executable counterpart of the paper's §4 correctness proof.
//
// It runs one writer and N−1 readers performing timed, version-stamped,
// integrity-checked operations, records the complete execution history,
// and then decides atomicity: regularity (no stale or future reads), no
// new-old inversion across any pair of reads (the paper's Criterion 1),
// per-process order, and torn-read freedom.
//
//	arccheck -alg arc -threads 8 -size 1024 -reads 200000 -writes 50000
//	arccheck -alg lock -steal 0.4        # locks stay atomic, just slow
//
// Exit status 0 means the recorded history is atomic; 1 means a violation
// was found (printed); 2 means the run itself failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"arcreg/internal/harness"
	"arcreg/internal/history"
	"arcreg/internal/membuf"
	"arcreg/internal/register"
	"arcreg/internal/steal"
	"arcreg/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		alg     = flag.String("alg", "arc", "algorithm: arc|rf|peterson|lock|seqlock|leftright|arc-nofastpath|arc-nohint")
		threads = flag.Int("threads", 4, "total workers: 1 writer + threads-1 readers")
		size    = flag.Int("size", 1024, "value size in bytes")
		writes  = flag.Int("writes", 50_000, "writes performed by the writer")
		reads   = flag.Int("reads", 200_000, "reads performed by each reader")
		stealF  = flag.Float64("steal", 0, "CPU-steal fraction (0 disables)")
		seed    = flag.Uint64("seed", 1, "steal schedule seed")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	a, err := harness.ParseAlgorithm(*alg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arccheck:", err)
		return 2
	}
	if *threads < 2 {
		fmt.Fprintln(os.Stderr, "arccheck: need at least 2 threads")
		return 2
	}
	readers := *threads - 1
	if readers > a.MaxReaders() {
		fmt.Fprintf(os.Stderr, "arccheck: %d readers exceed %s's limit of %d\n", readers, a, a.MaxReaders())
		return 2
	}
	if *size < membuf.MinPayload {
		*size = membuf.MinPayload
	}

	inj, err := steal.NewInjector(steal.Config{Fraction: *stealF, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arccheck:", err)
		return 2
	}

	// Seed the register so the very first reads verify as version 0.
	seedVal := make([]byte, *size)
	membuf.Encode(seedVal, 0)
	reg, err := harness.NewRegister(a, register.Config{
		MaxReaders:   readers,
		MaxValueSize: *size,
		Initial:      seedVal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arccheck:", err)
		return 2
	}

	var (
		clock = history.NewClock()
		logs  = make([]*history.Log, *threads)
		wg    sync.WaitGroup
		mu    sync.Mutex
		fails []error
	)
	for i := range logs {
		n := *reads
		if i == 0 {
			n = *writes
		}
		logs[i] = history.NewLog(n)
	}

	start := time.Now()

	// Writer (worker 0): performs exactly *writes operations, then stops.
	writerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		vw := workload.NewVerifiedWriter(reg.Writer(), *size, clock, logs[0])
		vcpu := inj.VCPU(0)
		for i := 0; i < *writes; i++ {
			if err := vw.Do(); err != nil {
				mu.Lock()
				fails = append(fails, fmt.Errorf("writer: %w", err))
				mu.Unlock()
				return
			}
			vcpu.Tick()
		}
	}()

	// Readers: each performs *reads operations (they overlap the writes
	// and keep reading after the writer finishes — both regimes matter).
	for r := 0; r < readers; r++ {
		rd, err := reg.NewReader()
		if err != nil {
			fmt.Fprintln(os.Stderr, "arccheck:", err)
			return 2
		}
		wg.Add(1)
		go func(proc int, rd register.Reader) {
			defer wg.Done()
			defer rd.Close()
			vr := workload.NewVerifiedReader(rd, proc, *size, clock, logs[1+proc])
			vcpu := inj.VCPU(1 + proc)
			for i := 0; i < *reads; i++ {
				if err := vr.Do(); err != nil {
					mu.Lock()
					fails = append(fails, fmt.Errorf("reader %d: %w", proc, err))
					mu.Unlock()
					return
				}
				vcpu.Tick()
			}
		}(r, rd)
	}

	wg.Wait()
	elapsed := time.Since(start)

	if len(fails) > 0 {
		for _, err := range fails {
			fmt.Fprintln(os.Stderr, "arccheck: run error:", err)
		}
		return 2
	}

	h := history.Merge(logs...)
	res := h.Check()
	if !*quiet {
		fmt.Printf("arccheck: %s threads=%d size=%d steal=%.0f%%\n", a, *threads, *size, *stealF*100)
		fmt.Printf("  recorded %d writes, %d reads in %v\n", h.Writes(), h.Reads(), elapsed.Round(time.Millisecond))
	}
	if res.Ok() {
		fmt.Printf("  ATOMIC: %d operations satisfy Criterion 1 (regular + no new-old inversion)\n", res.Checked)
		return 0
	}
	fmt.Printf("  VIOLATIONS (%d shown):\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println("   ", v)
	}
	return 1
}
