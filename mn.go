package arcreg

import "arcreg/internal/mnreg"

// MNConfig parametrizes an (M,N) multi-writer register.
type MNConfig struct {
	// Writers is M, the number of concurrent writer handles.
	Writers int
	// Readers is N, the number of concurrent reader handles.
	Readers int
	// MaxValueSize bounds user values in bytes (default 4096).
	MaxValueSize int
	// Initial optionally sets the starting value.
	Initial []byte
	// DisableFreshGate forces every scan to perform a full ARC read and
	// tag decode of all M components instead of the freshness-gated
	// collect (which serves unchanged components from a per-handle cache
	// at the cost of one atomic load each). Ablation benchmarks only.
	DisableFreshGate bool
	// DisableEpochGate keeps the per-component freshness probes but
	// turns off the adaptive epoch gate — the shared publish-epoch
	// counter that lets an all-fresh scan cost one atomic load instead
	// of M probes. Ablation and equivalence testing only.
	DisableEpochGate bool
}

// MNTag is the version tag of an (M,N) value: writes are totally ordered
// by (Seq, Writer).
type MNTag = mnreg.Tag

// MNWriter is one of the M write endpoints. One goroutine per handle.
type MNWriter interface {
	// Write publishes a new value, outbidding every tag currently
	// visible. Wait-free, O(M) ARC operations — and unchanged components
	// cost one atomic load each under the freshness-gated collect.
	Write(p []byte) error
	// ID reports the writer identity in [0, M).
	ID() int
	// WriteStats reports the publish-side counters of the writer's own
	// component plus the RMW instructions its tag collect executed.
	WriteStats() WriteStats
	// Close releases the identity for reuse.
	Close() error
}

// MNReader is one of the N read endpoints. One goroutine per handle.
type MNReader interface {
	// View returns the freshest value without copying; valid until the
	// handle's next operation. When no writer published since the last
	// View, the cost is one atomic load per component — or one atomic
	// load total once the adaptive epoch gate has validated a quiescent
	// scan: zero RMW instructions and zero tag decoding either way.
	View() ([]byte, error)
	// Read copies the freshest value into dst.
	Read(dst []byte) (int, error)
	// LastTag reports the tag of the last value returned.
	LastTag() MNTag
	// Fresh reports whether the last View/Read still returns the
	// composite's current value, without advancing the handle's cache —
	// one atomic load under a validated quiescent epoch, one load per
	// component otherwise. Conservative: a publish that loses the tag
	// argmax still reports stale. A handle that never read reports
	// false.
	Fresh() bool
	// ReadStats reports composite read counters: Ops counts composite
	// reads, FastPath counts all-fresh scans, RMW sums component RMW.
	ReadStats() ReadStats
	// Close releases the handle.
	Close() error
}

// MNRegister is a wait-free multi-word atomic (M,N) register composed
// from M ARC (1,N) registers — the construction the paper motivates in
// its introduction. Every operation is wait-free with O(M) cost, and the
// freshness-gated collect makes steady-state reads cost M atomic loads
// with zero RMW instructions (see internal/mnreg for the protocol).
type MNRegister struct {
	reg *mnreg.Register
}

// NewMN constructs an (M,N) register.
func NewMN(cfg MNConfig) (*MNRegister, error) {
	r, err := mnreg.New(mnreg.Config{
		Writers:      cfg.Writers,
		Readers:      cfg.Readers,
		MaxValueSize: cfg.MaxValueSize,
		Initial:      cfg.Initial,
	}, mnreg.Options{
		DisableFreshGate: cfg.DisableFreshGate,
		DisableEpochGate: cfg.DisableEpochGate,
	})
	if err != nil {
		return nil, err
	}
	return &MNRegister{reg: r}, nil
}

// NewWriter allocates one of the M writer identities.
func (r *MNRegister) NewWriter() (MNWriter, error) { return r.reg.NewWriter() }

// NewReader allocates one of the N reader handles.
func (r *MNRegister) NewReader() (MNReader, error) { return r.reg.NewReader() }

// Caps reports the composite's capability set: the freshness probe and
// zero-copy views survive the (M,N) composition, and every operation
// stays wait-free.
func (r *MNRegister) Caps() Caps { return r.reg.Caps() }

// Writers reports M.
func (r *MNRegister) Writers() int { return r.reg.Writers() }

// Readers reports N.
func (r *MNRegister) Readers() int { return r.reg.Readers() }

// MaxValueSize reports the user-value bound.
func (r *MNRegister) MaxValueSize() int { return r.reg.MaxValueSize() }

// Stats returns the composite's observability tree: the shared
// publication epoch, publication-window progress (pub_started /
// pub_done), identity occupancy, and one child per ARC component.
// Collecting it only loads — no RMW on any register path. Watcher
// backpressure ledgers live on the owning Reg (see Reg.Stats); a raw
// MNRegister reports the protocol side only.
func (r *MNRegister) Stats() Stats { return r.reg.Stats() }
