package arcreg_test

// Guard tests for the observability tentpole's zero-overhead contract:
// recording telemetry must not add RMW instructions or allocations to
// the hot paths it observes. The RMW guards run WITH a live Stats
// poller hammering the tree concurrently — collection is walker-side
// work, so the observed paths' RMW counts must not move. The
// allocation guards run WITHOUT concurrent pollers: AllocsPerRun
// measures process-global allocation, so a concurrently allocating
// goroutine would charge its garbage to the measured op.

import (
	"context"
	"sync"
	"testing"

	"arcreg"
)

// guardReg builds a warmed (1,N) ARC register with one reader in the
// steady state (value read once, unchanged since).
func guardReg(t testing.TB) (*arcreg.Reg[[]byte], *arcreg.TypedReader[[]byte]) {
	t.Helper()
	reg, err := arcreg.New[[]byte](
		arcreg.WithCodec(arcreg.Raw()),
		arcreg.WithReaders(2),
		arcreg.WithMaxValueSize(1024),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Set(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	if _, err := rd.Get(); err != nil {
		t.Fatal(err)
	}
	return reg, rd
}

// statsPoller walks the register's Stats tree in a tight loop until the
// returned stop function is called — the adversarial collector the RMW
// guards run against. It blocks until the first walk completes so the
// caller's hot loop is guaranteed to overlap live collection.
func statsPoller(reg *arcreg.Reg[[]byte]) (stop func() uint64) {
	ctx, cancel := context.WithCancel(context.Background())
	first := make(chan struct{})
	var walks uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			sn := reg.Stats()
			if sn.Name == "" {
				panic("empty stats root")
			}
			if walks++; walks == 1 {
				close(first)
			}
		}
	}()
	<-first
	return func() uint64 {
		cancel()
		wg.Wait()
		return walks
	}
}

// TestGuardHotGetZeroRMW pins the paper's headline claim through the
// full telemetry stack: steady-state Get executes zero RMW
// instructions even while a concurrent poller snapshots the Stats tree
// on every walk.
func TestGuardHotGetZeroRMW(t *testing.T) {
	reg, rd := guardReg(t)
	stop := statsPoller(reg)
	const ops = 20000
	before := rd.ReadStats()
	for i := 0; i < ops; i++ {
		if _, err := rd.Get(); err != nil {
			t.Fatal(err)
		}
	}
	after := rd.ReadStats()
	walks := stop()
	if walks == 0 {
		t.Fatal("stats poller never walked the tree")
	}
	if d := after.RMW - before.RMW; d != 0 {
		t.Errorf("steady-state Get executed %d RMW instructions over %d ops under a live Stats poller", d, ops)
	}
	if d := after.FastPath - before.FastPath; d != ops {
		t.Errorf("fast-path reads = %d, want %d (every steady Get must take R1-R2)", d, ops)
	}
}

// TestGuardHotSetRMWUnchangedByStats pins that a concurrent Stats
// poller adds no RMW to the write path: the uncontended writer's
// RMW-per-op is identical with and without the poller. (The write path
// has its own inherent RMW budget; the guard is that observation does
// not move it.)
func TestGuardHotSetRMWUnchangedByStats(t *testing.T) {
	const ops = 5000
	perOp := func(poll bool) uint64 {
		reg, rd := guardReg(t)
		defer rd.Close()
		w, err := reg.NewWriter()
		if err != nil {
			t.Fatal(err)
		}
		val := make([]byte, 1024)
		if err := w.Set(val); err != nil { // settle the slot scan
			t.Fatal(err)
		}
		var stop func() uint64
		if poll {
			stop = statsPoller(reg)
		}
		before := w.WriteStats()
		for i := 0; i < ops; i++ {
			if err := w.Set(val); err != nil {
				t.Fatal(err)
			}
		}
		after := w.WriteStats()
		if poll {
			if stop() == 0 {
				t.Fatal("stats poller never walked the tree")
			}
		}
		return after.RMW - before.RMW
	}
	quiet := perOp(false)
	observed := perOp(true)
	if observed != quiet {
		t.Errorf("write RMW over %d ops moved under a live Stats poller: %d quiet, %d observed",
			ops, quiet, observed)
	}
}

// TestGuardHotGetZeroAlloc pins zero allocations on the steady-state
// read with telemetry compiled in. No concurrent poller: AllocsPerRun
// is process-global.
func TestGuardHotGetZeroAlloc(t *testing.T) {
	_, rd := guardReg(t)
	if avg := testing.AllocsPerRun(2000, func() {
		if _, err := rd.Get(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state Get allocates %.1f objects/op, want 0", avg)
	}
}

// TestGuardHotSetZeroAlloc pins zero allocations on the uncontended
// write with telemetry compiled in (Raw codec: no encode copy).
func TestGuardHotSetZeroAlloc(t *testing.T) {
	reg, rd := guardReg(t)
	defer rd.Close()
	w, err := reg.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 1024)
	if avg := testing.AllocsPerRun(2000, func() {
		if err := w.Set(val); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("uncontended Set allocates %.1f objects/op, want 0", avg)
	}
}

// TestGuardNoWaiterPublishZeroAlloc pins the no-waiter publication:
// with the notification sequencer wired but no watcher parked, a write
// must not allocate and must not take the armed-gate stamp path (no
// wakeups recorded).
func TestGuardNoWaiterPublishZeroAlloc(t *testing.T) {
	reg, rd := guardReg(t)
	defer rd.Close()
	w, err := reg.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 1024)
	if avg := testing.AllocsPerRun(2000, func() {
		if err := w.Set(val); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("no-waiter publish allocates %.1f objects/op, want 0", avg)
	}
	sn := reg.Stats()
	watchers := sn.Child("watchers")
	if watchers == nil {
		t.Fatal("stats tree has no watchers child")
	}
	if got, _ := watchers.Get("wakeups"); got != 0 {
		t.Errorf("no-waiter publishes recorded %d wakeups, want 0", got)
	}
	if got, _ := watchers.Get("live"); got != 0 {
		t.Errorf("watcher ledger shows %d live watchers, want 0", got)
	}
}
