module arcreg

go 1.24
