package arcreg_test

// Facade-level tests for the watch subsystem: event-driven Watch and
// Changed across the (1,N), (M,N) and map shapes, the poll fallback on
// non-watchable algorithms, goroutine hygiene after cancellation, and
// the benchmark pair asserting that an idle watcher costs the writer
// nothing (BenchmarkSet vs BenchmarkSetWithWatcherIdle).

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"arcreg"
)

// watchCollect ranges a Watch iterator in a goroutine, forwarding
// yields into a buffered channel.
type tickEvent struct {
	v   int
	err error
}

func collectWatch(reg *arcreg.Reg[int], ctx context.Context) (<-chan tickEvent, error) {
	rd, err := reg.NewReader()
	if err != nil {
		return nil, err
	}
	ch := make(chan tickEvent, 256)
	go func() {
		defer close(ch)
		defer rd.Close()
		for v, err := range rd.Watch(ctx) {
			ch <- tickEvent{v: v, err: err}
		}
	}()
	return ch, nil
}

func nextTick(t *testing.T, ch <-chan tickEvent) tickEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("watch iterator ended unexpectedly")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("no watch event within 10s")
	}
	panic("unreachable")
}

// TestWatchDeliversEveryChange: sequential Sets with the watcher kept
// in lockstep are all delivered, in order, event-driven.
func TestWatchDeliversEveryChange(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithReaders(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Caps().Watchable {
		t.Fatal("ARC register must be watchable")
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := collectWatch(reg, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cancel()
		for range ch {
		}
	}()
	if ev := nextTick(t, ch); ev.err != nil || ev.v != 0 {
		t.Fatalf("initial event = %+v, want zero value", ev)
	}
	for i := 1; i <= 50; i++ {
		if err := reg.Set(i); err != nil {
			t.Fatal(err)
		}
		if ev := nextTick(t, ch); ev.err != nil || ev.v != i {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	cancel()
	ev := nextTick(t, ch)
	if !errors.Is(ev.err, context.Canceled) {
		t.Fatalf("terminal event = %+v, want context.Canceled", ev)
	}
}

// TestWatchConflatesBursts: a burst of Sets published while the watcher
// is busy is observed as at least one change carrying the newest value
// — and the newest value is always the last thing delivered.
func TestWatchConflatesBursts(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithReaders(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := collectWatch(reg, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cancel()
		for range ch {
		}
	}()
	nextTick(t, ch) // initial zero
	const last = 200
	for i := 1; i <= last; i++ {
		if err := reg.Set(i); err != nil {
			t.Fatal(err)
		}
	}
	// Conflation may skip intermediates but must reach the final value,
	// monotonically.
	prev := 0
	for {
		ev := nextTick(t, ch)
		if ev.err != nil {
			t.Fatalf("watch error: %v", ev.err)
		}
		if ev.v < prev {
			t.Fatalf("value regressed %d → %d", prev, ev.v)
		}
		prev = ev.v
		if ev.v == last {
			return
		}
	}
}

// TestWatchMN: the (M,N) composition delivers changes from every writer
// through the composite gate, tag-monotonically.
func TestWatchMN(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithWriters(2), arcreg.WithReaders(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Caps().Watchable {
		t.Fatal("(M,N) register must be watchable")
	}
	w1, err := reg.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := reg.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := collectWatch(reg, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cancel()
		for range ch {
		}
	}()
	nextTick(t, ch) // initial zero
	writers := []*arcreg.TypedWriter[int]{w1, w2}
	for i := 1; i <= 20; i++ {
		if err := writers[i%2].Set(i); err != nil {
			t.Fatal(err)
		}
		if ev := nextTick(t, ch); ev.err != nil || ev.v != i {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

// TestWatchPollFallback: a non-watchable algorithm (the lock register)
// still delivers changes through Watch, via the poll fallback, and
// honors cancellation.
func TestWatchPollFallback(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithAlgorithm(arcreg.Lock), arcreg.WithReaders(2))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Caps().Watchable {
		t.Fatal("lock register must not report Watchable")
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := collectWatch(reg, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cancel()
		for range ch {
		}
	}()
	nextTick(t, ch) // initial zero
	if err := reg.Set(7); err != nil {
		t.Fatal(err)
	}
	if ev := nextTick(t, ch); ev.err != nil || ev.v != 7 {
		t.Fatalf("fallback event = %+v, want 7", ev)
	}
	cancel()
	ev := nextTick(t, ch)
	if !errors.Is(ev.err, context.Canceled) {
		t.Fatalf("terminal event = %+v, want context.Canceled", ev)
	}
}

// TestChangedSignal: Reg.Changed closes on the next publication after
// the call, and on cancellation.
func TestChangedSignal(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithReaders(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ch := reg.Changed(ctx)
	select {
	case <-ch:
		t.Fatal("Changed fired before any publication")
	case <-time.After(20 * time.Millisecond):
	}
	if err := reg.Set(1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("Changed did not fire on Set")
	}

	cctx, cancel := context.WithCancel(context.Background())
	ch = reg.Changed(cctx)
	cancel()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("Changed did not close on cancellation")
	}
}

// TestChangedPollFallback: Changed on a non-watchable register signals
// through the poll fallback — including a Set that lands immediately
// after the call returns (the baseline is established synchronously,
// so no pre-goroutine publication can be absorbed silently).
func TestChangedPollFallback(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithAlgorithm(arcreg.Lock), arcreg.WithReaders(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 1; i <= 3; i++ {
		ch := reg.Changed(ctx)
		if err := reg.Set(i); err != nil { // immediately after the call
			t.Fatal(err)
		}
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: fallback Changed never fired", i)
		}
	}
	cancel()
	select {
	case <-reg.Changed(ctx): // cancelled ctx: must still close
	case <-time.After(10 * time.Second):
		t.Fatal("fallback Changed did not close on cancelled context")
	}
}

// TestWatchGoroutineHygiene: cancelled watchers and Changed waiters all
// exit; nothing leaks.
func TestWatchGoroutineHygiene(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithReaders(64))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var chans []<-chan tickEvent
	for i := 0; i < 16; i++ {
		ch, err := collectWatch(reg, ctx)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
		_ = reg.Changed(ctx) // parked Changed waiters must die with ctx too
	}
	cancel()
	for _, ch := range chans {
		for range ch {
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after cancel\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchableCapsPerAlgorithm pins which constructions promise the
// event-driven watch path.
func TestWatchableCapsPerAlgorithm(t *testing.T) {
	cases := []struct {
		alg  arcreg.AlgorithmID
		want bool
	}{
		{arcreg.ARC, true},
		{arcreg.RF, false},
		{arcreg.Peterson, false},
		{arcreg.Lock, false},
		{arcreg.Seqlock, false},
		{arcreg.LeftRight, false},
	}
	for _, tc := range cases {
		reg, err := arcreg.New[int](arcreg.WithAlgorithm(tc.alg), arcreg.WithReaders(2))
		if err != nil {
			t.Fatal(err)
		}
		if got := reg.Caps().Watchable; got != tc.want {
			t.Errorf("%s: Caps.Watchable = %v, want %v", tc.alg, got, tc.want)
		}
	}
	m, err := arcreg.NewMap[int]()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Caps().Watchable {
		t.Error("map: Caps.Watchable = false, want true")
	}
}

// TestMapWatchTyped: the typed map watch decodes the stream and carries
// lifecycle misses through delete/recreate.
func TestMapWatchTyped(t *testing.T) {
	type price struct{ Bid, Ask float64 }
	m, err := arcreg.NewMap[price](arcreg.WithReaders(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("EURUSD", price{Bid: 1.08, Ask: 1.09}); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type ev struct {
		p   price
		err error
	}
	ch := make(chan ev, 64)
	go func() {
		defer close(ch)
		defer rd.Close()
		for p, err := range rd.Watch(ctx, "EURUSD") {
			ch <- ev{p: p, err: err}
		}
	}()
	defer func() {
		cancel()
		for range ch {
		}
	}()
	next := func() ev {
		t.Helper()
		select {
		case e, ok := <-ch:
			if !ok {
				t.Fatal("map watch ended early")
			}
			return e
		case <-time.After(10 * time.Second):
			t.Fatal("no map watch event within 10s")
		}
		panic("unreachable")
	}
	if e := next(); e.err != nil || e.p.Bid != 1.08 {
		t.Fatalf("initial event = %+v", e)
	}
	if err := m.Set("EURUSD", price{Bid: 1.10, Ask: 1.11}); err != nil {
		t.Fatal(err)
	}
	if e := next(); e.err != nil || e.p.Bid != 1.10 {
		t.Fatalf("update event = %+v", e)
	}
	if err := m.Delete("EURUSD"); err != nil {
		t.Fatal(err)
	}
	if e := next(); !errors.Is(e.err, arcreg.ErrKeyNotFound) {
		t.Fatalf("delete event = %+v, want ErrKeyNotFound", e)
	}
	if err := m.Set("EURUSD", price{Bid: 1.20, Ask: 1.21}); err != nil {
		t.Fatal(err)
	}
	if e := next(); e.err != nil || e.p.Bid != 1.20 {
		t.Fatalf("re-create event = %+v (a 1.08/1.10 here is a resurrection)", e)
	}
}

// TestMapWatchAllTyped: the decoded snapshot-delta stream.
func TestMapWatchAllTyped(t *testing.T) {
	m, err := arcreg.NewMap[int](arcreg.WithReaders(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set("a", 1); err != nil {
		t.Fatal(err)
	}
	rd, err := m.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type ev struct {
		d   arcreg.MapDeltaOf[int]
		err error
	}
	ch := make(chan ev, 64)
	go func() {
		defer close(ch)
		defer rd.Close()
		for d, err := range rd.WatchAll(ctx) {
			ch <- ev{d: d, err: err}
		}
	}()
	defer func() {
		cancel()
		for range ch {
		}
	}()
	next := func() ev {
		t.Helper()
		select {
		case e, ok := <-ch:
			if !ok {
				t.Fatal("WatchAll ended early")
			}
			return e
		case <-time.After(10 * time.Second):
			t.Fatal("no WatchAll event within 10s")
		}
		panic("unreachable")
	}
	e := next()
	if e.err != nil || !e.d.Full || e.d.Values["a"] != 1 {
		t.Fatalf("first event = %+v, want full {a:1}", e)
	}
	if err := m.Set("b", 2); err != nil {
		t.Fatal(err)
	}
	e = next()
	if e.err != nil || e.d.Full || e.d.Values["b"] != 2 {
		t.Fatalf("create event = %+v, want {b:2}", e)
	}
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	e = next()
	if e.err != nil || len(e.d.Deleted) != 1 || e.d.Deleted[0] != "a" {
		t.Fatalf("delete event = %+v, want Deleted=[a]", e)
	}
}

// BenchmarkSet is the baseline write path: ARC Set through the facade
// with the Raw codec (no encoding allocations), no watcher anywhere.
func BenchmarkSet(b *testing.B) {
	reg, err := arcreg.New[[]byte](arcreg.WithCodec(arcreg.Raw()), arcreg.WithReaders(2))
	if err != nil {
		b.Fatal(err)
	}
	w, err := reg.NewWriter()
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.SetBytes(val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSetWithWatcherIdle is the acceptance benchmark: a Watch
// subscriber exists but is not parked (it is stalled in its consumer
// body, the "busy processing" state), so every Set takes the no-waiter
// publish path. Must match BenchmarkSet within noise: 0 RMW and 0
// allocations added by the notify layer.
func BenchmarkSetWithWatcherIdle(b *testing.B) {
	reg, err := arcreg.New[[]byte](arcreg.WithCodec(arcreg.Raw()), arcreg.WithReaders(2))
	if err != nil {
		b.Fatal(err)
	}
	w, err := reg.NewWriter()
	if err != nil {
		b.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	received := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer rd.Close()
		for range rd.Watch(ctx) {
			close(received)
			<-release // stall in the consumer: watcher exists, none parked
			return
		}
	}()
	if err := w.SetBytes(make([]byte, 64)); err != nil {
		b.Fatal(err)
	}
	<-received
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.SetBytes(val); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cancel()
	close(release)
}

// BenchmarkSetWithWatcherParked measures the woken path: the watcher is
// parked and every Set pays the swap+close wakeup (plus the watcher's
// re-read on another core). The interesting comparison is against
// BenchmarkSet: the delta is the full cost of delivering a wakeup.
func BenchmarkSetWithWatcherParked(b *testing.B) {
	reg, err := arcreg.New[[]byte](arcreg.WithCodec(arcreg.Raw()), arcreg.WithReaders(2))
	if err != nil {
		b.Fatal(err)
	}
	w, err := reg.NewWriter()
	if err != nil {
		b.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer rd.Close()
		for range rd.Watch(ctx) {
			seen.Add(1)
		}
	}()
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.SetBytes(val); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cancel()
	<-done
	b.ReportMetric(float64(seen.Load())/float64(b.N), "wakeups/op")
}
