package arcreg

// The public observability surface: one Stats tree shape shared by
// every register shape, the map, and the notification layer, with a
// stdlib-only export path (expvar) and a human-readable text dump.
//
// The tree is produced by walkers on demand — registers record nothing
// extra on their hot paths for it (reads stay zero-RMW, the no-waiter
// publish stays counter-free). DESIGN.md §10 describes the recording
// discipline: which counters are live cells readable mid-run, and
// which are plain per-handle counters that enter the tree through the
// Snapshot converters on ReadStats and WriteStats, collected at
// quiescence.

import (
	"expvar"

	"arcreg/internal/metrics"
	"arcreg/internal/obs"
)

// Stats is one node of the observability tree: a name, flat counters,
// optional latency histograms, and child nodes. Reg.Stats, Map.Stats
// and MNRegister.Stats return the root of their component's tree;
// Get, Child and WriteText navigate it, JSON renders it for export.
type Stats = obs.Snapshot

// Stat is one named counter in a Stats node.
type Stat = obs.Stat

// HistStat is one named histogram in a Stats node.
type HistStat = obs.HistStat

// Histogram is the fixed-size log-bucketed latency histogram the
// Stats tree embeds (wakeup latency, snapshot retries): Count, Mean,
// Quantile and Max summarize it, Merge combines populations.
type Histogram = metrics.Histogram

// StatsSource is anything that produces a Stats tree on demand —
// Reg[T], Map, MapOf[T] and MNRegister all implement it, as does
// StatsRegistry for composing several of them.
type StatsSource = obs.Source

// StatsSourceFunc adapts a plain function to StatsSource.
type StatsSourceFunc = obs.SourceFunc

// StatsVar adapts a StatsSource to expvar.Var: String renders the
// live tree as JSON, so the stdlib /debug/vars endpoint serves it
// with no additional dependencies. Observe wraps the common case.
type StatsVar = obs.Var

// StatsRegistry composes named StatsSources into one tree: Stats
// returns a root node whose children are the registered sources'
// snapshots in name order. Use one registry per process to export
// several registers and maps under a single expvar name.
type StatsRegistry = obs.Registry

// Observe publishes src's live Stats tree in the process-wide expvar
// registry under name, making it available on the stdlib
// /debug/vars endpoint (and to expvar.Do walkers):
//
//	reg, _ := arcreg.New[Config]()
//	arcreg.Observe("arcreg", reg)
//	// GET /debug/vars  →  {..., "arcreg": {"name":"register", ...}, ...}
//
// The tree is walked lazily on each render; publishing costs the
// register nothing until something scrapes it. Like expvar.Publish,
// Observe panics if name is already published — call it once per
// name, at wiring time.
func Observe(name string, src StatsSource) {
	expvar.Publish(name, obs.Var{Source: src})
}
