package arcreg

// The public observability surface: one Stats tree shape shared by
// every register shape, the map, and the notification layer, with a
// stdlib-only export path (expvar) and a human-readable text dump.
//
// The tree is produced by walkers on demand — registers record nothing
// extra on their hot paths for it (reads stay zero-RMW, the no-waiter
// publish stays counter-free). DESIGN.md §10 describes the recording
// discipline: which counters are live cells readable mid-run, and
// which are plain per-handle counters that enter the tree through the
// Snapshot converters on ReadStats and WriteStats, collected at
// quiescence.

import (
	"expvar"
	"io"

	"arcreg/internal/metrics"
	"arcreg/internal/obs"
	"arcreg/internal/trace"
)

// Stats is one node of the observability tree: a name, flat counters,
// optional latency histograms, and child nodes. Reg.Stats, Map.Stats
// and MNRegister.Stats return the root of their component's tree;
// Get, Child and WriteText navigate it, JSON renders it for export.
type Stats = obs.Snapshot

// Stat is one named counter in a Stats node.
type Stat = obs.Stat

// HistStat is one named histogram in a Stats node.
type HistStat = obs.HistStat

// Histogram is the fixed-size log-bucketed latency histogram the
// Stats tree embeds (wakeup latency, snapshot retries): Count, Mean,
// Quantile and Max summarize it, Merge combines populations.
type Histogram = metrics.Histogram

// StatsSource is anything that produces a Stats tree on demand —
// Reg[T], Map, MapOf[T] and MNRegister all implement it, as does
// StatsRegistry for composing several of them.
type StatsSource = obs.Source

// StatsSourceFunc adapts a plain function to StatsSource.
type StatsSourceFunc = obs.SourceFunc

// StatsVar adapts a StatsSource to expvar.Var: String renders the
// live tree as JSON, so the stdlib /debug/vars endpoint serves it
// with no additional dependencies. Observe wraps the common case.
type StatsVar = obs.Var

// StatsRegistry composes named StatsSources into one tree: Stats
// returns a root node whose children are the registered sources'
// snapshots in name order. Use one registry per process to export
// several registers and maps under a single expvar name.
type StatsRegistry = obs.Registry

// StatInfo is one named string annotation in a Stats node — build
// revision, Go version, listen address: facts that are not counters.
type StatInfo = obs.Info

// WriteProm renders a Stats tree in the Prometheus text exposition
// format (version 0.0.4), stdlib only: counters as untyped samples
// named <prefix>_<path>_<name>, histograms as the standard
// _bucket/_sum/_count triples with log₂ le bounds, Infos folded into
// <prefix>_<path>_info gauges. The HTTP handler serves exactly this on
// GET /metricz; WriteProm is the same rendering for processes that
// embed the map without the serving layer:
//
//	http.HandleFunc("/metricz", func(w http.ResponseWriter, _ *http.Request) {
//		arcreg.WriteProm(w, "myapp", m.Stats())
//	})
func WriteProm(w io.Writer, prefix string, sn Stats) {
	obs.WriteProm(w, prefix, sn)
}

// Tracer is the keyed store's always-on flight recorder (enable with
// WithTrace; obtain with Map.Tracer). Each single-writer domain under
// the map — shard writers, wakeup-tree root relays, watch sessions —
// records fixed-size events into an owner-plain ring buffer, adding
// zero RMW instructions and zero allocations to the paths it
// instruments. Walk it with Spans (reconstructed publish→deliver spans
// threaded by origin-publication stamps), Breakdown (per-stage latency
// histograms), WriteJSON/WriteText (the /debug/trace renderings), or
// Stats (a Stats-tree node, folded into Map.Stats automatically).
type Tracer = trace.Tracer

// TraceSpan is one reconstructed publish→deliver span: every recorded
// event sharing one origin publication stamp, in timestamp order.
type TraceSpan = trace.Span

// TraceEvent is one flight-recorder event, labeled with the ring (the
// single-writer domain) it was recorded into.
type TraceEvent = trace.SpanEvent

// TraceStage identifies which pipeline stage recorded an event.
type TraceStage = trace.Stage

// The stages of a publish→deliver span, in causal order: the register
// publish, the wakeup tree's root cascade, the watcher unpark, the
// delivery/conflation decision, and the SSE frame flush.
const (
	StagePublish  = trace.StagePublish
	StageCascade  = trace.StageCascade
	StageWake     = trace.StageWake
	StageConflate = trace.StageConflate
	StageFlush    = trace.StageFlush
)

// Observe publishes src's live Stats tree in the process-wide expvar
// registry under name, making it available on the stdlib
// /debug/vars endpoint (and to expvar.Do walkers):
//
//	reg, _ := arcreg.New[Config]()
//	arcreg.Observe("arcreg", reg)
//	// GET /debug/vars  →  {..., "arcreg": {"name":"register", ...}, ...}
//
// The tree is walked lazily on each render; publishing costs the
// register nothing until something scrapes it. Like expvar.Publish,
// Observe panics if name is already published — call it once per
// name, at wiring time.
func Observe(name string, src StatsSource) {
	expvar.Publish(name, obs.Var{Source: src})
}
