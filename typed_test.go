package arcreg_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"arcreg"
)

type appConfig struct {
	Generation int               `json:"generation"`
	Limits     map[string]int    `json:"limits"`
	Flags      []string          `json:"flags"`
	Notes      map[string]string `json:"notes,omitempty"`
}

func TestTypedJSONRoundTrip(t *testing.T) {
	reg, err := arcreg.NewJSON[appConfig](arcreg.Config{MaxReaders: 2, MaxValueSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	// Before any Set: the zero value.
	got, err := rd.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 0 || got.Limits != nil {
		t.Fatalf("zero value = %+v", got)
	}

	want := appConfig{
		Generation: 7,
		Limits:     map[string]int{"rps": 100, "burst": 250},
		Flags:      []string{"a", "b"},
	}
	if err := reg.Set(want); err != nil {
		t.Fatal(err)
	}
	got, err = rd.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 7 || got.Limits["rps"] != 100 || len(got.Flags) != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestTypedCustomCodec(t *testing.T) {
	reg, err := arcreg.NewARC(arcreg.Config{MaxReaders: 1, MaxValueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	typed := arcreg.NewTyped(reg,
		func(v uint32) ([]byte, error) {
			return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}, nil
		},
		func(p []byte) (uint32, error) {
			if len(p) != 4 {
				return 0, fmt.Errorf("want 4 bytes, got %d", len(p))
			}
			return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24, nil
		})
	if typed.Register() != reg {
		t.Fatal("Register() accessor wrong")
	}
	rd, err := typed.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint32{0xDEADBEEF, 1, 0, 1 << 31} {
		if err := typed.Set(v); err != nil {
			t.Fatal(err)
		}
		got, err := rd.Get()
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("got %#x want %#x", got, v)
		}
	}
}

func TestTypedEncodeErrorsSurface(t *testing.T) {
	reg, _ := arcreg.NewARC(arcreg.Config{MaxReaders: 1, MaxValueSize: 16})
	boom := errors.New("boom")
	typed := arcreg.NewTyped(reg,
		func(int) ([]byte, error) { return nil, boom },
		func([]byte) (int, error) { return 0, nil })
	if err := typed.Set(1); !errors.Is(err, boom) {
		t.Fatalf("Set err = %v", err)
	}
}

func TestTypedOversizedValueRejected(t *testing.T) {
	reg, err := arcreg.NewJSON[appConfig](arcreg.Config{MaxReaders: 1, MaxValueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	big := appConfig{Notes: map[string]string{"k": string(make([]byte, 200))}}
	if err := reg.Set(big); !errors.Is(err, arcreg.ErrValueTooLarge) {
		t.Fatalf("oversized Set: %v", err)
	}
	// A zero value that does not fit is caught at construction.
	if _, err := arcreg.NewJSON[appConfig](arcreg.Config{MaxReaders: 1, MaxValueSize: 8}); err == nil {
		t.Fatal("NewJSON accepted a MaxValueSize below the zero value's encoding")
	}
}

func TestTypedNonViewerBackend(t *testing.T) {
	base, err := arcreg.NewPeterson(arcreg.Config{MaxReaders: 1, MaxValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	typed := arcreg.NewTyped(base,
		func(s string) ([]byte, error) { return []byte(s), nil },
		func(p []byte) (string, error) { return string(p), nil })
	if err := typed.Set("through peterson"); err != nil {
		t.Fatal(err)
	}
	rd, err := typed.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.Get()
	if err != nil || got != "through peterson" {
		t.Fatalf("got %q, %v", got, err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTypedConcurrent(t *testing.T) {
	reg, err := arcreg.NewJSON[appConfig](arcreg.Config{MaxReaders: 4, MaxValueSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		rd, err := reg.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rd.Close()
			last := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				cfg, err := rd.Get()
				if err != nil {
					t.Error(err)
					return
				}
				if cfg.Generation < last {
					t.Errorf("generation regressed: %d after %d", cfg.Generation, last)
					return
				}
				last = cfg.Generation
			}
		}()
	}
	for gen := 1; gen <= 500; gen++ {
		if err := reg.Set(appConfig{Generation: gen, Flags: []string{"x"}}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestPublicDynamicBuffers(t *testing.T) {
	reg, err := arcreg.NewARC(arcreg.Config{MaxReaders: 1, MaxValueSize: 1 << 20},
		arcreg.WithDynamicBuffers())
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := reg.NewReader()
	for i := 0; i < 20; i++ {
		val := make([]byte, 10+i*1000)
		for j := range val {
			val[j] = byte(i)
		}
		if err := reg.Writer().Write(val); err != nil {
			t.Fatal(err)
		}
		v, ok := arcreg.View(rd)
		if !ok || len(v) != len(val) {
			t.Fatalf("view %d bytes, want %d", len(v), len(val))
		}
	}
}
