package arcreg

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"arcreg/internal/codec"
	"arcreg/internal/leftright"
	"arcreg/internal/lockreg"
	"arcreg/internal/notify"
	"arcreg/internal/peterson"
	"arcreg/internal/register"
	"arcreg/internal/rf"
	"arcreg/internal/seqlock"
)

// AlgorithmID names one of the register constructions New can build.
type AlgorithmID int

// The register constructions, in the order the paper discusses them.
const (
	// ARC is Anonymous Readers Counting — the paper's algorithm and the
	// default: wait-free constant-time reads (zero RMW when unchanged),
	// wait-free amortized constant-time writes, zero-copy views, up to
	// 2³²−2 readers. The only algorithm that composes into (M,N) via
	// WithWriters.
	ARC AlgorithmID = iota
	// RF is the Readers-Field register (Larsson et al., JEA 2009):
	// wait-free, one RMW per read, at most 58 readers.
	RF
	// Peterson is the 1983 construction from single-word registers:
	// wait-free with zero RMW instructions, up to three copies per read.
	Peterson
	// Lock is the reader/writer-spinlock comparator: linearizable but
	// not wait-free.
	Lock
	// Seqlock is the Linux-kernel seqcount pattern: wait-free writes,
	// lock-free (unbounded-retry) reads.
	Seqlock
	// LeftRight is Ramalhete & Correia's 2013 construction: wait-free
	// zero-copy reads over two instances, blocking writes.
	LeftRight
)

// Custom marks a Reg built over an out-of-tree Register implementation
// (via the deprecated NewTyped); its name is whatever the wrapped
// register's Name() reports.
const Custom AlgorithmID = -1

// String returns the harness/paper name of the algorithm.
func (a AlgorithmID) String() string {
	switch a {
	case ARC:
		return "arc"
	case RF:
		return "rf"
	case Peterson:
		return "peterson"
	case Lock:
		return "lock"
	case Seqlock:
		return "seqlock"
	case LeftRight:
		return "leftright"
	case Custom:
		return "custom"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// algorithmOf maps a register's self-reported Name back to its ID —
// how wrapRegister attributes pre-built registers handed to the
// deprecated constructors.
func algorithmOf(name string) AlgorithmID {
	for _, a := range []AlgorithmID{ARC, RF, Peterson, Lock, Seqlock, LeftRight} {
		if a.String() == name {
			return a
		}
	}
	return Custom
}

// Caps declares which optional capabilities a register's handles
// implement. New resolves it once at construction (see Reg.Caps), so
// application code branches on fields instead of type-asserting
// handles. A false field is advisory, a true one is a promise.
type Caps = register.Caps

// ErrNoView is returned by TypedReader.ViewBytes when the underlying
// register cannot expose values without copying (Peterson and seqlock;
// see Caps.ZeroCopyView).
var ErrNoView = errors.New("arcreg: register does not support zero-copy views")

// config collects the functional options of New and NewMap.
type config struct {
	alg           AlgorithmID
	writers       int
	readers       int
	maxValueSize  int
	initial       any // T, from WithInitial
	hasInitial    bool
	initialRaw    []byte // from WithInitialBytes
	codec         any    // Codec[T], from WithCodec
	arcOpts       []ARCOption
	noFreshGate   bool
	noEpochGate   bool
	shards        int  // NewMap only
	dynamicValues bool // NewMap only
	trace         bool // NewMap only
	traceRings    int  // NewMap only
	traceLanes    int  // NewMap only
}

// Option configures New. Options that carry a typed payload
// (WithInitial, WithCodec) infer their type parameter from the argument
// and are checked against New's T at construction time.
type Option func(*config)

// WithAlgorithm selects the register construction (default ARC).
func WithAlgorithm(a AlgorithmID) Option {
	return func(c *config) { c.alg = a }
}

// WithWriters sets M, the number of concurrent writer handles (default
// 1). M > 1 selects the (M,N) composition of M ARC components with
// tag-based ordering and the freshness-gated collect; it requires the
// ARC algorithm.
func WithWriters(m int) Option {
	return func(c *config) { c.writers = m }
}

// WithReaders sets N, the number of concurrently live reader handles
// (default GOMAXPROCS).
func WithReaders(n int) Option {
	return func(c *config) { c.readers = n }
}

// WithMaxValueSize bounds encoded values in bytes (default 4096; slot
// buffers are pre-allocated at this size).
func WithMaxValueSize(n int) Option {
	return func(c *config) { c.maxValueSize = n }
}

// WithInitial sets the value readers see before the first Set. Without
// it, New seeds the register with the codec's encoding of T's zero
// value, so a Get before the first Set decodes cleanly. The type
// parameter is inferred from v and must match New's T.
func WithInitial[T any](v T) Option {
	return func(c *config) { c.initial = v; c.hasInitial = true }
}

// WithInitialBytes sets the already-encoded initial value — the escape
// hatch when the encoded form is on hand (e.g. replayed from another
// register).
func WithInitialBytes(p []byte) Option {
	return func(c *config) { c.initialRaw = p }
}

// WithCodec selects the encoding (default JSON[T]). The type parameter
// is inferred from cd and must match New's T.
func WithCodec[T any](cd Codec[T]) Option {
	return func(c *config) { c.codec = cd }
}

// WithShards sets the keyed store's shard count, rounded up to a power
// of two (default 8). More shards mean more write-parallelism headroom
// and smaller directories. Valid only for NewMap.
func WithShards(s int) Option {
	return func(c *config) { c.shards = s }
}

// WithDynamicValues selects the §3.3 dynamic-buffer variant for the
// keyed store's per-key registers: every Set allocates an exact-size
// buffer instead of pre-allocating MaxReaders+2 MaxValueSize buffers
// per key — the right choice for maps holding many keys with small
// values. Valid only for NewMap.
func WithDynamicValues() Option {
	return func(c *config) { c.dynamicValues = true }
}

// WithTrace enables the keyed store's always-on flight recorder: every
// single-writer domain under the map — shard writers, wakeup-tree root
// relays, watch sessions — records fixed-size events into owner-plain
// ring buffers, reconstructed on demand into publish→deliver spans and
// per-stage latency breakdowns (Map.Tracer, GET /debug/trace on the
// HTTP handler). Recording adds zero RMW instructions and zero
// allocations to the hot paths it instruments — guard tests pin the
// traced and untraced Get/Set instruction traces bit-identical — at
// the cost of one clock read per publication and ~32 KiB of ring per
// domain. Valid only for NewMap.
func WithTrace() Option {
	return func(c *config) { c.trace = true }
}

// WithTraceRings sets the flight recorder's per-ring event capacity
// (default 1024, rounded up to a power of two) — the visible history
// window per domain. Implies WithTrace. Valid only for NewMap.
func WithTraceRings(events int) Option {
	return func(c *config) { c.trace = true; c.traceRings = events }
}

// WithTraceLanes bounds the flight recorder's watcher-lane pool: the
// maximum number of concurrently traced watch sessions (default 64).
// Sessions beyond the bound run untraced rather than growing the pool.
// Implies WithTrace. Valid only for NewMap.
func WithTraceLanes(n int) Option {
	return func(c *config) { c.trace = true; c.traceLanes = n }
}

// WithARC applies ARC tuning/ablation options (WithoutFastPath,
// WithoutFreeHint, WithStaticReaders, WithDynamicBuffers) to the
// underlying ARC register. Valid only for the (1,N) ARC algorithm.
func WithARC(opts ...ARCOption) Option {
	return func(c *config) { c.arcOpts = append(c.arcOpts, opts...) }
}

// WithoutFreshGate disables the (M,N) freshness-gated collect, forcing
// every scan to fully re-read all M components. Ablation benchmarks
// only; requires WithWriters(m > 1).
func WithoutFreshGate() Option {
	return func(c *config) { c.noFreshGate = true }
}

// WithoutEpochGate keeps the (M,N) per-component freshness probes but
// disables the adaptive epoch gate (the one-load all-fresh scan).
// Ablation and equivalence testing only; requires WithWriters(m > 1).
func WithoutEpochGate() Option {
	return func(c *config) { c.noEpochGate = true }
}

// Reg is a typed multi-word atomic register: the unified handle New
// returns for every algorithm and for both the (1,N) and (M,N) shapes.
// One goroutine per writer handle Sets, up to Readers goroutines Get
// through their own reader handles, all with the underlying register's
// progress guarantees (wait-free end to end over ARC).
//
// Encoding and decoding run outside the register's critical operations
// — encoding before the wait-free write, decoding after the wait-free
// read — so codecs may be arbitrarily expensive without affecting other
// threads' progress.
type Reg[T any] struct {
	c   Codec[T]
	reg Register    // (1,N) shape; nil when mn is set
	mn  *MNRegister // (M,N) shape; nil when reg is set
	alg AlgorithmID

	caps Caps

	// seq is the (1,N) register's publication sequencer when it has one
	// (Caps.Watchable); nil shapes fall back to polling in Watch and
	// Changed. The (M,N) shape parks through mn's composite gate
	// instead.
	seq *notify.Sequencer

	// watchTrack aggregates the backpressure ledgers of this register's
	// live watchers (parked Watch iterators attach on start, detach on
	// exit); Stats exposes the aggregate as the "watchers" child.
	watchTrack notify.Tracker

	// Lazily allocated default writer for Set. Failed allocations are
	// not cached: an (M,N) Set that lost the race for an identity
	// succeeds once one is released.
	setW  atomic.Pointer[TypedWriter[T]]
	setMu sync.Mutex
}

// New constructs a typed register. With no options it is an ARC (1,N)
// register over the JSON codec, N = GOMAXPROCS readers, 4KB values,
// seeded with T's zero value:
//
//	reg, err := arcreg.New[Config]()
//
// Options select the algorithm, the (M,N) multi-writer composition, the
// codec, and the capacity bounds:
//
//	reg, err := arcreg.New[Snapshot](
//		arcreg.WithWriters(4),
//		arcreg.WithReaders(64),
//		arcreg.WithMaxValueSize(32<<10),
//		arcreg.WithInitial(Snapshot{Epoch: 1}),
//	)
func New[T any](opts ...Option) (*Reg[T], error) {
	cfg := config{alg: ARC, writers: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.readers == 0 {
		cfg.readers = defaultReaders(cfg.alg)
	}

	// Resolve the codec.
	cd := JSON[T]()
	if cfg.codec != nil {
		var ok bool
		if cd, ok = cfg.codec.(Codec[T]); !ok {
			return nil, fmt.Errorf("arcreg: WithCodec value is a %T, not a Codec[%T]", cfg.codec, *new(T))
		}
	}

	// Resolve the initial value through the one shared bootstrap.
	initial := cfg.initialRaw
	switch {
	case cfg.hasInitial && initial != nil:
		return nil, errors.New("arcreg: WithInitial and WithInitialBytes are mutually exclusive")
	case cfg.hasInitial:
		v, ok := cfg.initial.(T)
		if !ok {
			return nil, fmt.Errorf("arcreg: WithInitial value is a %T, not a %T", cfg.initial, *new(T))
		}
		blob, err := cd.Encode(v)
		if err != nil {
			return nil, fmt.Errorf("arcreg: encoding initial value: %w", err)
		}
		if blob == nil {
			blob = []byte{} // nil means "unset" to the registers
		}
		initial = blob
	case initial == nil:
		blob, err := codec.ZeroInitial(cd, cfg.maxValueSize)
		if err != nil {
			return nil, err
		}
		initial = blob
	}

	// Shape and algorithm validation.
	if cfg.writers < 1 {
		return nil, fmt.Errorf("arcreg: WithWriters(%d): writer count must be positive", cfg.writers)
	}
	if cfg.writers > 1 && cfg.alg != ARC {
		return nil, fmt.Errorf("arcreg: WithWriters(%d) requires the ARC algorithm (the (M,N) composition is built from ARC components), got %s", cfg.writers, cfg.alg)
	}
	if (cfg.noFreshGate || cfg.noEpochGate) && cfg.writers <= 1 {
		return nil, errors.New("arcreg: WithoutFreshGate/WithoutEpochGate apply to the (M,N) composition; add WithWriters(m > 1)")
	}
	if len(cfg.arcOpts) > 0 && (cfg.alg != ARC || cfg.writers > 1) {
		return nil, errors.New("arcreg: WithARC applies to the (1,N) ARC algorithm only")
	}
	if cfg.shards != 0 || cfg.dynamicValues {
		return nil, errors.New("arcreg: WithShards/WithDynamicValues apply to NewMap, not New")
	}
	if cfg.trace {
		return nil, errors.New("arcreg: WithTrace/WithTraceRings/WithTraceLanes apply to NewMap, not New")
	}

	r := &Reg[T]{c: cd, alg: cfg.alg}
	if cfg.writers > 1 {
		mn, err := NewMN(MNConfig{
			Writers:          cfg.writers,
			Readers:          cfg.readers,
			MaxValueSize:     cfg.maxValueSize,
			Initial:          initial,
			DisableFreshGate: cfg.noFreshGate,
			DisableEpochGate: cfg.noEpochGate,
		})
		if err != nil {
			return nil, err
		}
		r.mn = mn
		r.caps = mn.Caps()
		return r, nil
	}

	rcfg := Config{MaxReaders: cfg.readers, MaxValueSize: cfg.maxValueSize, Initial: initial}
	var (
		reg Register
		err error
	)
	switch cfg.alg {
	case ARC:
		reg, err = NewARC(rcfg, cfg.arcOpts...)
	case RF:
		reg, err = NewRF(rcfg)
	case Peterson:
		reg, err = NewPeterson(rcfg)
	case Lock:
		reg, err = NewLocked(rcfg)
	case Seqlock:
		reg, err = NewSeqlock(rcfg)
	case LeftRight:
		reg, err = NewLeftRight(rcfg)
	default:
		return nil, fmt.Errorf("arcreg: unknown algorithm %s", cfg.alg)
	}
	if err != nil {
		return nil, err
	}
	r.reg = reg
	r.caps = register.CapsOf(reg)
	r.resolveSequencer()
	return r, nil
}

// sequencerProvider is how watchable (1,N) registers expose their
// publication sequencer (internal/arc implements it).
type sequencerProvider interface {
	Notifier() *notify.Sequencer
}

// resolveSequencer caches the register's publication sequencer and
// keeps Caps.Watchable honest: a register that reports Watchable but
// exposes no sequencer is demoted to the poll fallback.
func (r *Reg[T]) resolveSequencer() {
	if sp, ok := r.reg.(sequencerProvider); ok {
		r.seq = sp.Notifier()
	} else {
		r.caps.Watchable = false
	}
}

// defaultReaders is the WithReaders default: GOMAXPROCS (one handle per
// goroutine), clamped to the algorithm's architectural reader bound so
// New[T](WithAlgorithm(RF)) does not fail out of the box on machines
// with more than 58 CPUs.
func defaultReaders(alg AlgorithmID) int {
	n := runtime.GOMAXPROCS(0)
	var limit int
	switch alg {
	case RF:
		limit = rf.MaxReaders
	case Peterson:
		limit = peterson.MaxReaders
	case Lock:
		limit = lockreg.MaxReaders
	case Seqlock:
		limit = seqlock.MaxReaders
	case LeftRight:
		limit = leftright.MaxReaders
	default:
		limit = MaxARCReaders
	}
	if n > limit {
		n = limit
	}
	return n
}

// wrapRegister builds a Reg over an existing byte register — the
// delegation target of the deprecated NewTyped constructor.
func wrapRegister[T any](reg Register, cd Codec[T]) *Reg[T] {
	r := &Reg[T]{c: cd, reg: reg, caps: register.CapsOf(reg), alg: algorithmOf(reg.Name())}
	r.resolveSequencer()
	return r
}

// Algorithm reports which construction backs the register.
func (r *Reg[T]) Algorithm() AlgorithmID { return r.alg }

// Caps reports the capability set New resolved at construction —
// zero-copy views, freshness probing, stats, wait-freedom — so callers
// branch on fields instead of type-asserting handles.
func (r *Reg[T]) Caps() Caps { return r.caps }

// Codec reports the encoding in use.
func (r *Reg[T]) Codec() Codec[T] { return r.c }

// Register exposes the underlying (1,N) byte register for raw access,
// or nil for the (M,N) shape.
func (r *Reg[T]) Register() Register { return r.reg }

// MN exposes the underlying (M,N) byte register, or nil for the (1,N)
// shape.
func (r *Reg[T]) MN() *MNRegister { return r.mn }

// Writers reports M (1 for the single-writer shape).
func (r *Reg[T]) Writers() int {
	if r.mn != nil {
		return r.mn.Writers()
	}
	return 1
}

// Readers reports N, the reader-handle capacity.
func (r *Reg[T]) Readers() int {
	if r.mn != nil {
		return r.mn.Readers()
	}
	return r.reg.MaxReaders()
}

// MaxValueSize reports the encoded-value bound in bytes.
func (r *Reg[T]) MaxValueSize() int {
	if r.mn != nil {
		return r.mn.MaxValueSize()
	}
	return r.reg.MaxValueSize()
}

// Set publishes a new value through the register's default writer
// handle (allocated on first use; for the (M,N) shape it occupies one
// of the M identities). Call from one goroutine at a time; concurrent
// writers in the (M,N) shape should hold their own NewWriter handles.
func (r *Reg[T]) Set(v T) error {
	w := r.setW.Load()
	if w == nil {
		r.setMu.Lock()
		if w = r.setW.Load(); w == nil {
			var err error
			if w, err = r.NewWriter(); err != nil {
				r.setMu.Unlock()
				return err
			}
			r.setW.Store(w)
		}
		r.setMu.Unlock()
	}
	return w.Set(v)
}

// NewWriter allocates a typed writer handle. For the (1,N) shape every
// call returns a handle over the register's single writer endpoint —
// the (1,N) contract still allows only one goroutine writing at a time.
// For the (M,N) shape each call claims one of the M writer identities.
func (r *Reg[T]) NewWriter() (*TypedWriter[T], error) {
	if r.mn != nil {
		w, err := r.mn.NewWriter()
		if err != nil {
			return nil, err
		}
		return &TypedWriter[T]{c: r.c, mnw: w}, nil
	}
	w := r.reg.Writer()
	tw := &TypedWriter[T]{c: r.c, w: w}
	if sw, ok := w.(StatWriter); ok {
		tw.statw = sw
	} else if sw, ok := r.reg.(StatWriter); ok {
		tw.statw = sw
	}
	return tw, nil
}

// NewReader allocates a typed reader handle (one per goroutine, counted
// against the register's Readers capacity).
func (r *Reg[T]) NewReader() (*TypedReader[T], error) {
	if r.mn != nil {
		rd, err := r.mn.NewReader()
		if err != nil {
			return nil, err
		}
		mnr := r.mn.reg
		return &TypedReader[T]{
			c:          r.c,
			mnrd:       rd,
			tracker:    &r.watchTrack,
			watchEpoch: mnr.NotifyEpoch,
			watchGate:  mnr.NotifyGate(),
		}, nil
	}
	rd, err := r.reg.NewReader()
	if err != nil {
		return nil, err
	}
	tr := &TypedReader[T]{c: r.c, rd: rd, maxSize: r.reg.MaxValueSize()}
	if v, ok := rd.(Viewer); ok {
		tr.viewer = v // decode straight from the slot, no copy
	} else {
		tr.buf = make([]byte, r.reg.MaxValueSize())
	}
	if p, ok := rd.(FreshnessProber); ok {
		tr.prober = p
	}
	if fv, ok := rd.(register.FreshViewer); ok {
		tr.fviewer = fv
	}
	if sr, ok := rd.(StatReader); ok {
		tr.statr = sr
	}
	if seq := r.seq; seq != nil {
		tr.tracker = &r.watchTrack
		tr.watchEpoch = seq.Epoch
		tr.watchGate = seq.Gate()
	}
	return tr, nil
}

// Changed returns a channel that is closed when the register publishes
// a value after the call — the select-friendly change signal — or when
// ctx is done (re-check ctx to tell the cases apart). Each call arms a
// fresh one-shot signal that holds a waiting goroutine (and, on
// non-watchable registers, a reader handle) until it fires or ctx is
// cancelled — so re-arm only after the channel fires, keeping at most
// one signal live per subscriber:
//
//	ch := reg.Changed(ctx)
//	for {
//		select {
//		case <-ch:
//			if ctx.Err() != nil { return }
//			v, _ := rd.Get()       // something new (latest value)
//			ch = reg.Changed(ctx)  // re-arm AFTER the signal fired
//		case <-other:
//			...
//		}
//	}
//
// On watchable registers (Caps.Watchable: ARC and the (M,N)
// composition) the signal is event-driven — the waiting goroutine
// parks on the publication sequencer and costs the writer nothing
// while parked. Other algorithms fall back to a polling goroutine with
// its own reader handle; if that handle cannot be allocated (reader
// capacity exhausted) the channel closes immediately, which a caller
// experiences as a spurious change.
func (r *Reg[T]) Changed(ctx context.Context) <-chan struct{} {
	out := make(chan struct{})
	// One-shot waits park directly on the source gate rather than
	// subscribing a tree leaf: a Changed channel lives for a single
	// publication, so the subscribe/close lifecycle would cost more
	// than the one broadcast it avoids. Sustained watchers (Watch /
	// WatchAll iterators) are the ones that ride the wakeup tree.
	switch {
	case r.mn != nil:
		mnr := r.mn.reg
		seen := mnr.NotifyEpoch()
		go func() {
			defer close(out)
			_, _ = mnr.WaitPublish(ctx, seen)
		}()
	case r.seq != nil:
		seen := r.seq.Epoch()
		go func() {
			defer close(out)
			_, _ = r.seq.Wait(ctx, seen)
		}()
	default:
		rd, err := r.NewReader()
		if err != nil {
			// Degrade to a throttled spurious change: the caller
			// re-reads, and the delay keeps a capacity-exhausted caller
			// from hot-spinning on immediately-closed channels.
			go func() {
				defer close(out)
				select {
				case <-ctx.Done():
				case <-time.After(watchPollInterval):
				}
			}()
			return out
		}
		// Establish the baseline synchronously: a Set landing right
		// after Changed returns must flip the first poll, matching the
		// watchable paths' epoch-snapshot-before-return ordering.
		if _, _, err := rd.poll(true); err != nil {
			rd.Close()
			close(out)
			return out
		}
		go func() {
			defer close(out)
			defer rd.Close()
			timer := time.NewTimer(watchPollInterval)
			defer timer.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
				if _, changed, err := rd.poll(false); changed || err != nil {
					return
				}
				timer.Reset(watchPollInterval)
			}
		}()
	}
	return out
}

// Get is a convenience for one-shot reads: it allocates a reader
// handle, reads, and closes it. It decodes from a private copy of the
// encoded value, so the result is caller-owned even under an aliasing
// codec (Raw) — there is no live handle left to keep a slot view valid.
// Polling loops should hold a NewReader handle instead: the handle
// carries the per-process protocol state that makes repeated reads hit
// the zero-RMW fast path (and its Get can decode without the copy).
func (r *Reg[T]) Get() (T, error) {
	var zero T
	rd, err := r.NewReader()
	if err != nil {
		return zero, err
	}
	defer rd.Close()
	buf := make([]byte, r.MaxValueSize())
	n, err := rd.ReadBytes(buf)
	if err != nil {
		return zero, err
	}
	return r.c.Decode(buf[:n])
}

// Stats returns the register's observability tree: protocol gauges and
// live-cell counters from the underlying register (slots, live
// readers, publication epoch, waking publishes — DESIGN.md §10 has the
// catalogue) plus a "watchers" child aggregating the backpressure
// ledgers of the live Watch iterators (lag, conflation, wakeup
// latency). Collecting the tree only loads: no RMW instruction on any
// register path, nothing added to the writer's publish cost.
//
// Per-handle read/write counters are not in this tree — they are
// deliberately plain (unsynchronized) so the hot paths stay zero-RMW.
// Collect them at quiescence through TypedReader.ReadStats and
// TypedWriter.WriteStats; their Snapshot converters produce nodes in
// the same shape when a caller wants to graft them in.
func (r *Reg[T]) Stats() Stats {
	var sn Stats
	switch {
	case r.mn != nil:
		sn = r.mn.Stats()
	case r.reg != nil:
		if src, ok := r.reg.(StatsSource); ok {
			sn = src.Stats()
		} else {
			// Algorithms without live cells (RF, Peterson, the lock
			// baselines) still report a root so the watcher aggregate
			// has somewhere to hang.
			sn = Stats{Name: "register"}
		}
	}
	sn.Children = append(sn.Children, r.watchTrack.Stats())
	return sn
}

// TypedWriter is a typed write endpoint: the single (1,N) writer, or
// one of the M identities of the (M,N) composition. One goroutine per
// handle.
type TypedWriter[T any] struct {
	c     Codec[T]
	w     Writer // (1,N)
	statw StatWriter
	mnw   MNWriter // (M,N)
}

// Set encodes and publishes a new value. In the (M,N) shape the write
// outbids every tag currently visible.
func (w *TypedWriter[T]) Set(v T) error {
	blob, err := w.c.Encode(v)
	if err != nil {
		return fmt.Errorf("arcreg: encode: %w", err)
	}
	if w.mnw != nil {
		return w.mnw.Write(blob)
	}
	return w.w.Write(blob)
}

// SetBytes publishes an already-encoded value, bypassing the codec.
func (w *TypedWriter[T]) SetBytes(p []byte) error {
	if w.mnw != nil {
		return w.mnw.Write(p)
	}
	return w.w.Write(p)
}

// ID reports the writer identity in [0, M); 0 for the (1,N) shape.
func (w *TypedWriter[T]) ID() int {
	if w.mnw != nil {
		return w.mnw.ID()
	}
	return 0
}

// WriteStats reports the writer's counters, or the zero value when the
// register does not expose them (see Caps.WriteStats).
func (w *TypedWriter[T]) WriteStats() WriteStats {
	if w.mnw != nil {
		return w.mnw.WriteStats()
	}
	if w.statw != nil {
		return w.statw.WriteStats()
	}
	return WriteStats{}
}

// Writer exposes the underlying (1,N) byte endpoint, or nil for (M,N).
func (w *TypedWriter[T]) Writer() Writer { return w.w }

// MNWriter exposes the underlying (M,N) byte endpoint, or nil for
// (1,N).
func (w *TypedWriter[T]) MNWriter() MNWriter { return w.mnw }

// Close releases an (M,N) writer identity for reuse; it is a no-op for
// the (1,N) single writer.
func (w *TypedWriter[T]) Close() error {
	if w.mnw != nil {
		return w.mnw.Close()
	}
	return nil
}

// TypedReader is a per-goroutine typed read endpoint with the full
// capability surface: decoding reads (Get), zero-copy byte views
// (ViewBytes), freshness probing (Fresh), stats (ReadStats) and change
// polling (Values). Capabilities the underlying register lacks degrade
// conservatively (see Caps) instead of requiring type assertions.
type TypedReader[T any] struct {
	c       Codec[T]
	rd      Reader // (1,N)
	viewer  Viewer
	prober  FreshnessProber
	fviewer register.FreshViewer
	statr   StatReader
	mnrd    MNReader // (M,N)
	buf     []byte   // copy-read scratch when the register cannot view
	maxSize int

	// Poll state for Values' byte-compare fallback on probe-less
	// registers.
	pollLast []byte
	pollBuf  []byte

	// Parking hooks for Watch (nil on registers without a publication
	// sequencer, which fall back to polling): watchEpoch snapshots the
	// publication epoch and watchGate is the gate publications wake.
	// Parked Watch iterators do not park on watchGate directly — they
	// subscribe a leaf of its wakeup tree (Gate.Fan) so 100k watchers
	// never share one broadcast cohort. tracker is the owning Reg's
	// watcher population; parked Watch iterators attach their ledger to
	// it for the iteration's lifetime.
	watchEpoch func() uint64
	watchGate  *notify.Gate
	tracker    *notify.Tracker
}

// Get returns the freshest value, decoding straight from the register
// slot when the algorithm supports zero-copy views.
func (r *TypedReader[T]) Get() (T, error) {
	var zero T
	if r.mnrd != nil {
		v, err := r.mnrd.View()
		if err != nil {
			return zero, err
		}
		return r.c.Decode(v)
	}
	if r.viewer != nil {
		v, err := r.viewer.View()
		if err != nil {
			return zero, err
		}
		return r.c.Decode(v)
	}
	n, err := r.rd.Read(r.buf)
	if err != nil {
		return zero, err
	}
	return r.c.Decode(r.buf[:n])
}

// ViewBytes returns a zero-copy view of the freshest encoded value, or
// ErrNoView when the algorithm cannot expose one (Caps.ZeroCopyView).
// The view is valid until this handle's next operation and must not be
// modified.
func (r *TypedReader[T]) ViewBytes() ([]byte, error) {
	if r.mnrd != nil {
		return r.mnrd.View()
	}
	if r.viewer != nil {
		return r.viewer.View()
	}
	return nil, ErrNoView
}

// ReadBytes copies the freshest encoded value into dst, bypassing the
// codec (ErrBufferTooSmall with the required length if dst cannot hold
// it).
func (r *TypedReader[T]) ReadBytes(dst []byte) (int, error) {
	if r.mnrd != nil {
		return r.mnrd.Read(dst)
	}
	return r.rd.Read(dst)
}

// Fresh reports whether the handle's last read still returns the
// register's current value — for ARC a single atomic load with no RMW
// instruction. Registers without a freshness probe (Caps.FreshProbe
// false) conservatively report false, so callers re-read. A handle that
// has never read reports false.
func (r *TypedReader[T]) Fresh() bool {
	if r.mnrd != nil {
		return r.mnrd.Fresh()
	}
	if r.prober != nil {
		return r.prober.Fresh()
	}
	return false
}

// ReadStats reports the handle's counters, or the zero value when the
// register does not expose them (see Caps.ReadStats).
func (r *TypedReader[T]) ReadStats() ReadStats {
	if r.mnrd != nil {
		return r.mnrd.ReadStats()
	}
	if r.statr != nil {
		return r.statr.ReadStats()
	}
	return ReadStats{}
}

// Reader exposes the underlying (1,N) byte handle, or nil for (M,N).
func (r *TypedReader[T]) Reader() Reader { return r.rd }

// MNReader exposes the underlying (M,N) byte handle (tags, raw views),
// or nil for (1,N).
func (r *TypedReader[T]) MNReader() MNReader { return r.mnrd }

// Close releases the handle.
func (r *TypedReader[T]) Close() error {
	if r.mnrd != nil {
		return r.mnrd.Close()
	}
	return r.rd.Close()
}

// watchPollInterval paces the poll fallback of Watch and Changed on
// registers without a publication sequencer (Caps.Watchable false).
const watchPollInterval = time.Millisecond

// Watch returns an iterator over the register's publications: it
// yields the value current when iteration starts, then every change it
// observes, parking between changes instead of polling. Delivery is
// at-least-once per publication with latest-value conflation — a burst
// of Sets may be observed as one change carrying the newest value, and
// a consumer that processes slowly never blocks the writer (the writer
// publishes and moves on; the watcher re-reads the freshest value when
// it returns).
//
// On watchable registers (Caps.Watchable: ARC and the (M,N)
// composition) an idle watcher costs nothing and wakes via the
// publication sequencer; the writer's publish path stays RMW- and
// allocation-free while the watcher is busy processing. Algorithms
// without a sequencer degrade to polling every millisecond.
//
// The iterator ends when the consumer breaks, when ctx is done (the
// final yield carries ctx's error), or when a read/decode error is
// yielded:
//
//	for v, err := range rd.Watch(ctx) {
//		if err != nil { break } // ctx.Err() or a read/decode error
//		apply(v)
//	}
//
// Watch owns the handle while it runs: do not touch the TypedReader
// from other goroutines (handles are single-goroutine, like every
// reader in this package).
func (r *TypedReader[T]) Watch(ctx context.Context) iter.Seq2[T, error] {
	return r.watchSeq(ctx, watchPollInterval, true)
}

// Values returns a poll iterator over the register's publications: it
// yields the value current when iteration starts, then every change it
// observes, sleeping `every` between polls (0 yields the scheduler
// instead of sleeping). Between changes a poll costs one freshness
// probe — for ARC one atomic load, no RMW, no decoding; probe-less
// algorithms (Caps.FreshProbe false) fall back to a copy-and-compare
// poll. Like all reads, polling observes the freshest value: rapid
// successive Sets may be observed as one change.
//
// Values is the polling compatibility shim over the Watch engine —
// same yield semantics, fixed-interval pacing instead of parking, no
// context. New code that wants change delivery should use Watch: it
// reacts immediately, costs nothing while idle, and cancels cleanly.
//
// The iterator stops when the loop breaks or a read/decode error is
// yielded:
//
//	for v, err := range rd.Values(time.Millisecond) {
//		if err != nil { ... break or log ... }
//		apply(v)
//	}
//
// Values owns the handle while it runs: do not touch the TypedReader
// from other goroutines (handles are single-goroutine, like every
// reader in this package).
func (r *TypedReader[T]) Values(every time.Duration) iter.Seq2[T, error] {
	return r.watchSeq(context.Background(), every, false)
}

// watchSeq is the one change-delivery engine under Watch and Values:
// read, yield on change, then either park on the publication sequencer
// (park, on watchable registers) or pace by sleeping `every`.
func (r *TypedReader[T]) watchSeq(ctx context.Context, every time.Duration, park bool) iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		var zero T
		first := true
		parked := park && r.watchEpoch != nil && r.watchGate != nil
		// The watcher's backpressure ledger, framed by the register's
		// publication epoch. Attached to the Reg's tracker for the
		// iteration's lifetime (lifecycle edges only, never per-event);
		// polling iterators have no epoch frame and record nothing.
		var ws *notify.WatchStats
		// Parked iterators subscribe a leaf of the gate's wakeup tree
		// for the iteration's lifetime: wakeup cohorts stay bounded at
		// watchers/leaves however many Watch sessions are live, and the
		// publisher never pays a close that scales with them. Both are
		// lifecycle edges, like the tracker attach.
		var sub *notify.Sub
		if parked {
			ws = &notify.WatchStats{}
			if r.tracker != nil {
				r.tracker.Attach(ws)
				defer r.tracker.Detach(ws)
			}
			sub = r.watchGate.Fan(notify.DefaultFanArity, notify.DefaultFanDepth).Subscribe()
			defer sub.Close()
		}
		var timer *time.Timer // lazily created, reused across poll rounds
		defer func() {
			if timer != nil {
				timer.Stop()
			}
		}()
		for {
			if err := ctx.Err(); err != nil {
				yield(zero, err)
				return
			}
			// Epoch snapshot strictly before the read: a publication
			// racing the read either lands in it or moves the epoch past
			// the snapshot and makes the wait return immediately —
			// at-least-once, never a lost change.
			var seen uint64
			if parked {
				seen = r.watchEpoch()
				ws.NoteSeen(seen)
			}
			v, changed, err := r.poll(first)
			if err != nil {
				yield(zero, err)
				return
			}
			if changed || first {
				if !yield(v, nil) {
					return
				}
				if parked {
					ws.NoteDelivered(seen)
				}
			} else if parked {
				// The poll proved we are current as of seen: advance the
				// observed frame without counting a delivery.
				ws.NoteObserved(seen)
			}
			first = false
			switch {
			case parked:
				if _, err := notify.WaitEpoch(ctx, r.watchEpoch, seen, ws, sub.Gate()); err != nil {
					yield(zero, err)
					return
				}
			case every > 0:
				if ctx.Done() == nil {
					time.Sleep(every)
				} else {
					if timer == nil {
						timer = time.NewTimer(every)
					} else {
						timer.Reset(every)
					}
					select {
					case <-timer.C:
					case <-ctx.Done():
						// go ≥ 1.23 timer semantics: Stop without
						// draining; Reset is safe regardless.
						timer.Stop()
					}
				}
			default:
				runtime.Gosched()
			}
		}
	}
}

// poll performs one Values step: report whether a new publication is
// visible and decode it if so.
func (r *TypedReader[T]) poll(first bool) (v T, changed bool, err error) {
	var zero T
	switch {
	case r.fviewer != nil:
		// Combined probe-and-fetch (ARC): one call answers both.
		view, viewChanged, err := r.fviewer.ViewFresh()
		if err != nil {
			return zero, false, err
		}
		if !viewChanged && !first {
			return zero, false, nil
		}
		v, err := r.c.Decode(view)
		return v, true, err
	case r.mnrd != nil:
		// Probe, then fetch — but the composite probe is conservative (a
		// publish that loses the tag argmax reports stale), so confirm an
		// actual change by tag before yielding.
		if !first && r.mnrd.Fresh() {
			return zero, false, nil
		}
		prev := r.mnrd.LastTag()
		view, err := r.mnrd.View()
		if err != nil {
			return zero, false, err
		}
		if !first && r.mnrd.LastTag() == prev {
			return zero, false, nil // conservative-stale probe: no decode
		}
		v, err := r.c.Decode(view)
		return v, true, err
	case r.prober != nil:
		// Probe, then fetch only on change (ARC/RF probes are exact).
		if !first && r.prober.Fresh() {
			return zero, false, nil
		}
		v, err := r.Get()
		return v, err == nil, err
	default:
		// Copy-and-compare fallback for probe-less registers. Always a
		// copying Read: a zero-copy view would stay pinned across the
		// inter-poll sleep, and on the lock and Left-Right registers a
		// pinned view blocks the writer.
		if r.pollBuf == nil {
			if r.buf != nil {
				r.pollBuf = r.buf // no-viewer handles already own a scratch
			} else {
				r.pollBuf = make([]byte, r.maxSize)
			}
		}
		n, err := r.rd.Read(r.pollBuf)
		if err != nil {
			return zero, false, err
		}
		cur := r.pollBuf[:n]
		if !first && bytes.Equal(cur, r.pollLast) {
			return zero, false, nil
		}
		r.pollLast = append(r.pollLast[:0], cur...)
		v, err := r.c.Decode(cur)
		return v, true, err
	}
}
