package arcreg_test

// Tests for the generics-first facade: New's option handling, the
// capability-complete handles, the Values poll iterator — and the full
// regtest conformance battery run THROUGH the typed handles (New +
// Raw codec + TypedWriter/TypedReader adapted back to the byte
// contract), so the facade plumbing is held to exactly the same
// behavioral requirements as the raw algorithms.

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"arcreg"
	"arcreg/internal/register"
	"arcreg/internal/regtest"
)

// facadeAlgs maps every (1,N) algorithm the facade constructs to the
// number of readers its battery deployments need.
var facadeAlgs = []arcreg.AlgorithmID{
	arcreg.ARC, arcreg.RF, arcreg.Peterson, arcreg.Lock,
	arcreg.Seqlock, arcreg.LeftRight,
}

// handleRegister adapts a *Reg[[]byte] and its typed handles to the
// register.Register contract: every battery operation travels through
// the facade's TypedWriter/TypedReader, not the raw register.
type handleRegister struct {
	reg *arcreg.Reg[[]byte]
	w   *arcreg.TypedWriter[[]byte]
}

func (h *handleRegister) Name() string            { return h.reg.Algorithm().String() }
func (h *handleRegister) MaxReaders() int         { return h.reg.Readers() }
func (h *handleRegister) MaxValueSize() int       { return h.reg.MaxValueSize() }
func (h *handleRegister) Writer() register.Writer { return (*handleWriter)(h) }

func (h *handleRegister) NewReader() (register.Reader, error) {
	tr, err := h.reg.NewReader()
	if err != nil {
		return nil, err
	}
	caps := h.reg.Caps()
	base := handleReader{tr: tr}
	switch {
	case caps.ZeroCopyView && caps.FreshProbe:
		return &freshViewerReader{viewerReader{base}}, nil
	case caps.ZeroCopyView:
		return &viewerReader{base}, nil
	default:
		return &base, nil
	}
}

// handleWriter funnels battery writes through TypedWriter.SetBytes.
type handleWriter handleRegister

func (h *handleWriter) Write(p []byte) error { return h.w.SetBytes(p) }

type handleReader struct {
	tr *arcreg.TypedReader[[]byte]
}

func (r *handleReader) Read(dst []byte) (int, error) { return r.tr.ReadBytes(dst) }
func (r *handleReader) Close() error                 { return r.tr.Close() }

// viewerReader adds Viewer for algorithms whose Caps promise it, and
// freshViewerReader adds FreshnessProber on top — the battery's
// capability subtests run exactly when the facade's Caps say they
// should.
type viewerReader struct{ handleReader }

func (r *viewerReader) View() ([]byte, error) { return r.tr.ViewBytes() }

type freshViewerReader struct{ viewerReader }

func (r *freshViewerReader) Fresh() bool { return r.tr.Fresh() }

// TestFacadeConformance runs the cross-algorithm battery through the
// facade handles for every algorithm New constructs.
func TestFacadeConformance(t *testing.T) {
	for _, alg := range facadeAlgs {
		t.Run(alg.String(), func(t *testing.T) {
			regtest.ConformanceConstructor(t, func(t *testing.T, readers, size int, initial []byte) register.Register {
				t.Helper()
				reg, err := arcreg.New[[]byte](
					arcreg.WithAlgorithm(alg),
					arcreg.WithReaders(readers),
					arcreg.WithMaxValueSize(size),
					arcreg.WithCodec(arcreg.Raw()),
					arcreg.WithInitialBytes(initial),
				)
				if err != nil {
					t.Fatalf("New[%s]: %v", alg, err)
				}
				w, err := reg.NewWriter()
				if err != nil {
					t.Fatalf("NewWriter[%s]: %v", alg, err)
				}
				return &handleRegister{reg: reg, w: w}
			})
		})
	}
}

// TestFacadeDefaults: New with no options is an ARC register over JSON
// seeded with the zero value.
func TestFacadeDefaults(t *testing.T) {
	type limits struct {
		RPS   int `json:"rps"`
		Burst int `json:"burst"`
	}
	reg, err := arcreg.New[limits]()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Algorithm() != arcreg.ARC {
		t.Errorf("default algorithm = %s, want arc", reg.Algorithm())
	}
	if reg.Writers() != 1 {
		t.Errorf("Writers() = %d", reg.Writers())
	}
	if got := reg.Codec().Name(); got != "json" {
		t.Errorf("default codec = %q, want json", got)
	}
	caps := reg.Caps()
	if !caps.ZeroCopyView || !caps.FreshProbe || !caps.WaitFreeRead || !caps.WaitFreeWrite {
		t.Errorf("ARC caps incomplete: %+v", caps)
	}
	rd, err := reg.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	v, err := rd.Get()
	if err != nil {
		t.Fatalf("Get before first Set: %v", err)
	}
	if v != (limits{}) {
		t.Errorf("zero-value seed decoded to %+v", v)
	}
	if err := reg.Set(limits{RPS: 100, Burst: 250}); err != nil {
		t.Fatal(err)
	}
	if v, err = rd.Get(); err != nil || v.RPS != 100 || v.Burst != 250 {
		t.Errorf("Get = %+v, %v", v, err)
	}
	if !rd.Fresh() {
		t.Error("just-read handle not fresh")
	}
	if st := rd.ReadStats(); st.Ops != 2 {
		t.Errorf("ReadStats.Ops = %d, want 2", st.Ops)
	}
}

// TestFacadeEveryAlgorithm drives a typed set/get round trip over each
// algorithm, exercising both the viewer and the copying decode paths.
func TestFacadeEveryAlgorithm(t *testing.T) {
	for _, alg := range facadeAlgs {
		t.Run(alg.String(), func(t *testing.T) {
			reg, err := arcreg.New[map[string]int](
				arcreg.WithAlgorithm(alg),
				arcreg.WithReaders(2),
				arcreg.WithMaxValueSize(256),
			)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := reg.NewReader()
			if err != nil {
				t.Fatal(err)
			}
			defer rd.Close()
			if err := reg.Set(map[string]int{"a": 1, "b": 2}); err != nil {
				t.Fatal(err)
			}
			v, err := rd.Get()
			if err != nil {
				t.Fatal(err)
			}
			if v["a"] != 1 || v["b"] != 2 {
				t.Errorf("Get = %v", v)
			}
			if _, err := rd.ViewBytes(); !reg.Caps().ZeroCopyView {
				if !errors.Is(err, arcreg.ErrNoView) {
					t.Errorf("ViewBytes without views: err = %v, want ErrNoView", err)
				}
			} else if err != nil {
				t.Errorf("ViewBytes: %v", err)
			}
		})
	}
}

// TestFacadeMN: WithWriters selects the (M,N) composition; handles keep
// the full capability surface (freshness probe included, via the new
// composite Fresh).
func TestFacadeMN(t *testing.T) {
	reg, err := arcreg.New[string](
		arcreg.WithWriters(3),
		arcreg.WithReaders(2),
		arcreg.WithCodec(arcreg.String()),
		arcreg.WithMaxValueSize(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	if reg.MN() == nil || reg.Register() != nil {
		t.Fatal("MN shape not selected")
	}
	if reg.Writers() != 3 {
		t.Errorf("Writers() = %d", reg.Writers())
	}
	if !reg.Caps().FreshProbe || !reg.Caps().ZeroCopyView {
		t.Errorf("MN caps incomplete: %+v", reg.Caps())
	}

	w0, err := reg.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	w1, err := reg.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	if w0.ID() == w1.ID() {
		t.Errorf("writer identities collide: %d", w0.ID())
	}

	rd, err := reg.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	if err := w0.Set("from w0"); err != nil {
		t.Fatal(err)
	}
	if err := w1.Set("from w1"); err != nil {
		t.Fatal(err)
	}
	v, err := rd.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v != "from w1" {
		t.Errorf("Get = %q, want the outbidding write", v)
	}
	if !rd.Fresh() {
		t.Error("just-read MN handle not fresh")
	}
	if err := w0.Set("again"); err != nil {
		t.Fatal(err)
	}
	if rd.Fresh() {
		t.Error("stale MN handle reports fresh")
	}
	if v, _ = rd.Get(); v != "again" {
		t.Errorf("Get after republish = %q", v)
	}
	if rd.MNReader() == nil || rd.MNReader().LastTag().Seq == 0 {
		t.Error("MNReader tag access lost")
	}

	// Close releases the identity for reuse.
	if err := w0.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := reg.NewWriter()
	if err != nil {
		t.Fatalf("NewWriter after Close: %v", err)
	}
	w2.Close()
}

// TestFacadeOptionValidation pins the construction-time errors.
func TestFacadeOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		err  string
		opts []arcreg.Option
	}{
		{"writers-need-arc", "requires the ARC algorithm", []arcreg.Option{
			arcreg.WithAlgorithm(arcreg.RF), arcreg.WithWriters(2)}},
		{"zero-writers", "must be positive", []arcreg.Option{arcreg.WithWriters(-1)}},
		{"arc-opts-on-rf", "ARC algorithm only", []arcreg.Option{
			arcreg.WithAlgorithm(arcreg.RF), arcreg.WithARC(arcreg.WithoutFastPath())}},
		{"arc-opts-on-mn", "ARC algorithm only", []arcreg.Option{
			arcreg.WithWriters(2), arcreg.WithARC(arcreg.WithoutFastPath())}},
		{"gate-ablation-needs-mn", "WithWriters", []arcreg.Option{arcreg.WithoutFreshGate()}},
		{"initial-conflict", "mutually exclusive", []arcreg.Option{
			arcreg.WithInitial(1), arcreg.WithInitialBytes([]byte("1"))}},
		{"codec-type-mismatch", "not a Codec", []arcreg.Option{arcreg.WithCodec(arcreg.String())}},
		{"initial-type-mismatch", "not a", []arcreg.Option{arcreg.WithInitial("nope")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := arcreg.New[int](tc.opts...)
			if err == nil {
				t.Fatal("New succeeded, want error")
			}
			if !contains(err.Error(), tc.err) {
				t.Errorf("error %q does not mention %q", err, tc.err)
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestFacadeInitial: WithInitial seeds through the codec.
func TestFacadeInitial(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithInitial(42), arcreg.WithReaders(1))
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Get()
	if err != nil || v != 42 {
		t.Fatalf("Get = %d, %v; want 42", v, err)
	}
}

// TestFacadeValues exercises the poll iterator on the probe path (ARC),
// the copy-and-compare fallback (Peterson, seqlock), and the composite
// probe (MN): it must yield the initial value, observe the final write,
// and never yield a duplicate of an unchanged publication.
func TestFacadeValues(t *testing.T) {
	shapes := []struct {
		name string
		opts []arcreg.Option
	}{
		{"arc", nil},
		{"peterson", []arcreg.Option{arcreg.WithAlgorithm(arcreg.Peterson)}},
		{"seqlock", []arcreg.Option{arcreg.WithAlgorithm(arcreg.Seqlock)}},
		{"mn", []arcreg.Option{arcreg.WithWriters(2)}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			const final = 20
			opts := append([]arcreg.Option{arcreg.WithReaders(2)}, shape.opts...)
			reg, err := arcreg.New[int](opts...)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := reg.NewReader()
			if err != nil {
				t.Fatal(err)
			}
			defer rd.Close()

			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 1; i <= final; i++ {
					if err := reg.Set(i); err != nil {
						t.Errorf("Set(%d): %v", i, err)
						return
					}
					time.Sleep(50 * time.Microsecond)
				}
			}()

			var got []int
			deadline := time.Now().Add(10 * time.Second)
			for v, err := range rd.Values(10 * time.Microsecond) {
				if err != nil {
					t.Fatalf("Values: %v", err)
				}
				got = append(got, v)
				if v == final || time.Now().After(deadline) {
					break
				}
			}
			wg.Wait()
			if len(got) == 0 || got[len(got)-1] != final {
				t.Fatalf("Values ended at %v, want trailing %d", got, final)
			}
			for i := 1; i < len(got); i++ {
				if got[i] < got[i-1] {
					t.Fatalf("Values regressed: %v", got)
				}
				if got[i] == got[i-1] {
					t.Fatalf("Values yielded unchanged publication twice: %v", got)
				}
			}
		})
	}
}

// TestFacadeValuesStopsOnBreak: breaking the range loop terminates the
// iterator promptly (the yield false path).
func TestFacadeValuesStopsOnBreak(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithReaders(1))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reg.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	n := 0
	for range rd.Values(0) {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("yielded %d times before break", n)
	}
}

// TestFacadeDefaultReadersClamped: the GOMAXPROCS reader default must
// be clamped to the algorithm's architectural bound, so algorithm
// selection works out of the box on many-core machines (RF allows only
// 58 readers).
func TestFacadeDefaultReadersClamped(t *testing.T) {
	old := runtime.GOMAXPROCS(64)
	defer runtime.GOMAXPROCS(old)
	reg, err := arcreg.New[int](arcreg.WithAlgorithm(arcreg.RF))
	if err != nil {
		t.Fatalf("New[RF] at GOMAXPROCS=64: %v", err)
	}
	if got := reg.Readers(); got > arcreg.MaxRFReaders {
		t.Errorf("Readers() = %d > RF limit %d", got, arcreg.MaxRFReaders)
	}
}

// TestFacadeOneShotGetOwnsResult: the one-shot Reg.Get must return
// caller-owned data even under the aliasing Raw codec — the temporary
// handle is closed before Get returns, so a slot alias would dangle.
func TestFacadeOneShotGetOwnsResult(t *testing.T) {
	reg, err := arcreg.New[[]byte](
		arcreg.WithCodec(arcreg.Raw()),
		arcreg.WithReaders(2), arcreg.WithMaxValueSize(64))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("one-shot-owned-payload")
	if err := reg.Set(want); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Get()
	if err != nil {
		t.Fatal(err)
	}
	// Recycle every slot: with no handle pinning anything, the slot the
	// one-shot read saw gets rewritten.
	rd, err := reg.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	for i := 0; i < 8; i++ {
		if err := reg.Set(bytes.Repeat([]byte{byte('0' + i)}, 32)); err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Get(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Errorf("one-shot Get result mutated by slot recycling: %q", got)
	}
}

// TestFacadeSetRecoversAfterWriterRelease: a Set that lost the race for
// an (M,N) writer identity must succeed once one is released — the
// failure is not cached.
func TestFacadeSetRecoversAfterWriterRelease(t *testing.T) {
	reg, err := arcreg.New[int](arcreg.WithWriters(2), arcreg.WithReaders(1))
	if err != nil {
		t.Fatal(err)
	}
	w0, err := reg.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	w1, err := reg.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	if err := reg.Set(1); err == nil {
		t.Fatal("Set succeeded with all writer identities taken")
	}
	if err := w0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Set(2); err != nil {
		t.Fatalf("Set after identity release: %v", err)
	}
	v, err := reg.Get()
	if err != nil || v != 2 {
		t.Fatalf("Get = %d, %v", v, err)
	}
}

// TestFacadeValuesDoesNotPinViews: Values' fallback poll must not hold
// a zero-copy view across its inter-poll sleep — on the lock and
// Left-Right registers a pinned view blocks the writer for the whole
// poll interval.
func TestFacadeValuesDoesNotPinViews(t *testing.T) {
	for _, alg := range []arcreg.AlgorithmID{arcreg.Lock, arcreg.LeftRight} {
		t.Run(alg.String(), func(t *testing.T) {
			reg, err := arcreg.New[int](
				arcreg.WithAlgorithm(alg), arcreg.WithReaders(1))
			if err != nil {
				t.Fatal(err)
			}
			rd, err := reg.NewReader()
			if err != nil {
				t.Fatal(err)
			}
			defer rd.Close()

			done := make(chan struct{})
			go func() {
				defer close(done)
				for v, err := range rd.Values(400 * time.Millisecond) {
					if err != nil {
						t.Errorf("Values: %v", err)
						return
					}
					if v == 7 {
						return
					}
				}
			}()
			time.Sleep(20 * time.Millisecond) // iterator is now mid-sleep
			start := time.Now()
			if err := reg.Set(7); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d > 200*time.Millisecond {
				t.Errorf("Set blocked %v behind the poll interval — view pinned across the sleep", d)
			}
			<-done
		})
	}
}

// TestFacadeRawZeroSeed: the zero-value seed survives codecs whose zero
// encoding is nil (Raw) — the first Get must see the empty value, not
// the registers' one-zero-byte default.
func TestFacadeRawZeroSeed(t *testing.T) {
	reg, err := arcreg.New[[]byte](arcreg.WithCodec(arcreg.Raw()), arcreg.WithReaders(1))
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Get()
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("Get before first Set = %v, want the empty zero value", v)
	}

	// Same through WithInitial of a nil-encoding value.
	reg2, err := arcreg.New[[]byte](
		arcreg.WithCodec(arcreg.Raw()), arcreg.WithReaders(1),
		arcreg.WithInitial([]byte(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if v, err = reg2.Get(); err != nil || len(v) != 0 {
		t.Errorf("Get of nil WithInitial = %v, %v; want empty", v, err)
	}
}

// TestWrappedRegisterAlgorithm: NewTyped over a pre-built register must
// attribute it to the right algorithm, not default to ARC.
func TestWrappedRegisterAlgorithm(t *testing.T) {
	rf, err := arcreg.NewRF(arcreg.Config{MaxReaders: 1, MaxValueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	tr := arcreg.NewTyped[string](rf,
		func(v string) ([]byte, error) { return []byte(v), nil },
		func(p []byte) (string, error) { return string(p), nil })
	if got := tr.Algorithm(); got != arcreg.RF {
		t.Errorf("Algorithm() = %s, want rf", got)
	}
}

// TestDeprecatedWrappersDelegate: the old constructors still work and
// expose the new surface underneath.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	type point struct{ X, Y int }
	tr, err := arcreg.NewJSON[point](arcreg.Config{MaxReaders: 2, MaxValueSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Register() == nil {
		t.Fatal("Typed.Register() lost")
	}
	if err := tr.Set(point{1, 2}); err != nil {
		t.Fatal(err)
	}
	rd, err := tr.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	v, err := rd.Get()
	if err != nil || v != (point{1, 2}) {
		t.Fatalf("Get = %+v, %v", v, err)
	}
	// The wrapper inherits the facade's capability surface.
	if !tr.Caps().ZeroCopyView {
		t.Error("Typed wrapper lost the capability report")
	}
	if !rd.Fresh() {
		t.Error("Typed reader lost the freshness probe")
	}
}
