// A small keyed store over the wait-free snapshot map: one writer
// goroutine runs the full key lifecycle — create, update, delete,
// re-create — while readers Get hot keys (two atomic loads when nothing
// changed), poll a single key for changes with Values, and take atomic
// multi-key Snapshots that are guaranteed to be a point-in-time view of
// the whole store, never a torn mixture of before- and after-states.
//
//	go run ./examples/kvstore
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arcreg"
)

// Session is the per-user record the store holds.
type Session struct {
	User  string `json:"user"`
	Node  string `json:"node"`
	Epoch int    `json:"epoch"`
}

func main() {
	store, err := arcreg.NewMap[Session](
		arcreg.WithShards(8),
		arcreg.WithReaders(4),
		arcreg.WithMaxValueSize(512),
	)
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)

	// Reader 1: polls one key with Values — each idle poll is a
	// freshness probe (one to two atomic loads, no RMW, no decoding);
	// deletion of the key ends the iteration with ErrKeyNotFound.
	watcher, err := store.NewReader()
	if err != nil {
		log.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer watcher.Close()
		changes := 0
		for s, err := range watcher.Values("session/alice", time.Millisecond) {
			if err != nil {
				if errors.Is(err, arcreg.ErrKeyNotFound) {
					fmt.Printf("watcher: session/alice deleted after %d observed changes\n", changes)
					return
				}
				log.Fatal(err)
			}
			changes++
			_ = s
		}
	}()

	// Reader 2: takes periodic snapshots. The invariants checked below
	// only hold because Snapshot is atomic across keys and shards: the
	// writer updates "session/alice-shadow" strictly before
	// "session/alice" and deletes alice strictly first, so at every
	// instant alice's presence implies her shadow's, with the shadow at
	// most one epoch ahead. A torn multi-key read could observe any
	// mixture; a point-in-time view cannot.
	auditor, err := store.NewReader()
	if err != nil {
		log.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer auditor.Close()
		audits := 0
		for !stop.Load() {
			snap, err := auditor.Snapshot()
			if err != nil {
				log.Fatal(err)
			}
			a, aok := snap["session/alice"]
			b, bok := snap["session/alice-shadow"]
			if aok && !bok {
				log.Fatal("torn snapshot: alice present without her shadow")
			}
			if aok && b.Epoch != a.Epoch && b.Epoch != a.Epoch+1 {
				log.Fatalf("torn snapshot: epochs %d vs %d", a.Epoch, b.Epoch)
			}
			audits++
		}
		fmt.Printf("auditor: %d atomic snapshots, none torn\n", audits)
	}()

	// The writer: full lifecycle, single goroutine (the map is
	// single-writer per shard; one goroutine satisfies that trivially).
	for epoch := 1; epoch <= 200; epoch++ {
		if epoch%3 == 0 {
			// Delete and re-create the pair — shadow first out, last in,
			// so "alice present ⟹ shadow present" holds at every instant.
			if err := store.Delete("session/alice"); err != nil {
				log.Fatal(err)
			}
			if err := store.Delete("session/alice-shadow"); err != nil {
				log.Fatal(err)
			}
		}
		if err := store.Set("session/alice-shadow", Session{User: "alice", Node: "n2", Epoch: epoch}); err != nil {
			log.Fatal(err)
		}
		if err := store.Set("session/alice", Session{User: "alice", Node: "n1", Epoch: epoch}); err != nil {
			log.Fatal(err)
		}
		if err := store.Set(fmt.Sprintf("session/user-%03d", epoch), Session{User: "guest", Node: "n3", Epoch: epoch}); err != nil {
			log.Fatal(err)
		}
		if epoch%50 == 0 {
			time.Sleep(2 * time.Millisecond) // let the watcher observe some epochs
		}
	}
	// Final deletion ends the watcher's iteration.
	if err := store.Delete("session/alice"); err != nil {
		log.Fatal(err)
	}
	if err := store.Delete("session/alice-shadow"); err != nil {
		log.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()

	fmt.Printf("store holds %d sessions after the churn\n", store.Len())
	fmt.Println("every read and write was wait-free; no reader ever blocked the writer")
}
