// Parallel-simulation state sharing: the scenario from the paper's
// research context (the authors work on optimistic parallel discrete
// event simulation; the Hold model the evaluation cites comes from
// simulation event-list studies). A coordinator periodically publishes
// global simulation control state — the GVT (global virtual time) plus
// per-LP commit horizons — through an ARC register; many logical
// processes (LPs) consult it before every event to decide whether their
// speculative work can be committed. Reads are wait-free, so a slow LP
// never delays GVT publication and GVT publication never delays event
// processing — the property that motivates wait-free registers for
// "massively parallel applications" in the paper's conclusions.
//
//	go run ./examples/simulation
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arcreg"
)

const (
	lps       = 8 // logical processes
	eventsPer = 300_000
	gvtPeriod = 2 * time.Millisecond
)

// control is the shared snapshot: GVT plus a commit horizon per LP.
// Layout: 8B round | 8B gvt | lps×8B horizons.
const controlSize = 16 + lps*8

func main() {
	reg, err := arcreg.NewARC(arcreg.Config{MaxReaders: lps, MaxValueSize: controlSize})
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg        sync.WaitGroup
		clocks    [lps]atomic.Uint64 // each LP's local virtual time
		committed [lps]atomic.Uint64 // events committed per LP
		stale     atomic.Uint64      // control reads skipped via freshness probe
		done      atomic.Int32
	)

	// LPs: process events; before each, consult the freshest control
	// state (freshness-gated: decode only when GVT advanced).
	for lp := 0; lp < lps; lp++ {
		rd, err := reg.NewReader()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer rd.Close()
			defer done.Add(1)
			var gvt uint64
			var lastRound uint64
			for ev := 0; ev < eventsPer; ev++ {
				// Wait-free control-state consultation.
				if fresh, _ := arcreg.Fresh(rd); !fresh {
					v, ok := arcreg.View(rd)
					if !ok {
						log.Fatalf("LP %d: view failed", id)
					}
					round := binary.LittleEndian.Uint64(v[0:8])
					newGVT := binary.LittleEndian.Uint64(v[8:16])
					if round < lastRound {
						log.Fatalf("LP %d: control went backwards (round %d after %d)", id, round, lastRound)
					}
					if newGVT < gvt {
						log.Fatalf("LP %d: GVT regressed %d -> %d", id, gvt, newGVT)
					}
					lastRound, gvt = round, newGVT
				} else {
					stale.Add(1)
				}
				// "Process" the event: advance local clock; commit if the
				// event time is at or below... (events below GVT+lookahead
				// are safe to commit in a conservative engine).
				t := clocks[id].Add(1 + uint64(id)%3)
				if t <= gvt+1000 {
					committed[id].Add(1)
				}
			}
		}(lp)
	}

	// Coordinator: the single writer. Computes GVT = min of LP clocks and
	// publishes it until every LP finishes.
	buf := make([]byte, controlSize)
	var round uint64
	for done.Load() < lps {
		round++
		gvt := uint64(1 << 62)
		for i := range clocks {
			if c := clocks[i].Load(); c < gvt {
				gvt = c
			}
		}
		binary.LittleEndian.PutUint64(buf[0:8], round)
		binary.LittleEndian.PutUint64(buf[8:16], gvt)
		for i := range clocks {
			binary.LittleEndian.PutUint64(buf[16+i*8:], clocks[i].Load())
		}
		if err := reg.Writer().Write(buf); err != nil {
			log.Fatal(err)
		}
		time.Sleep(gvtPeriod)
	}
	wg.Wait()

	var total uint64
	for i := range committed {
		total += committed[i].Load()
	}
	fmt.Printf("%d LPs processed %d events; %d committed against %d GVT rounds\n",
		lps, lps*eventsPer, total, round)
	fmt.Printf("%d control consultations were satisfied by the freshness probe alone (no read)\n",
		stale.Load())
	fmt.Println("no LP ever blocked on GVT publication; no GVT round waited for an LP")
}
