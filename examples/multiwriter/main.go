// Multi-writer sharing with the (M,N) register: several sensor nodes each
// publish their latest reading; consumers always see the globally freshest
// one, totally ordered by tag — the (M,N) composition over ARC that the
// paper's introduction motivates as the reason optimized (1,N) registers
// matter.
//
//	go run ./examples/multiwriter
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arcreg"
)

const (
	sensors   = 4
	consumers = 3
	readings  = 2000 // per sensor
)

// reading layout: 8B sensor id | 8B sample number | 8B value
const readingSize = 24

func main() {
	reg, err := arcreg.NewMN(arcreg.MNConfig{
		Writers:      sensors,
		Readers:      consumers,
		MaxValueSize: readingSize,
	})
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		reads     atomic.Uint64
		published atomic.Uint64
	)

	// Consumers: follow the freshest reading; tags must never regress.
	for c := 0; c < consumers; c++ {
		rd, err := reg.NewReader()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer rd.Close()
			var last arcreg.MNTag
			var lastSensor, lastSample uint64
			for !stop.Load() {
				v, err := rd.View()
				if err != nil {
					log.Fatalf("consumer %d: %v", id, err)
				}
				if len(v) == 0 {
					continue // genesis value
				}
				tag := rd.LastTag()
				if tag.Less(last) {
					log.Fatalf("consumer %d: tag regressed: %v after %v", id, tag, last)
				}
				last = tag
				lastSensor = binary.LittleEndian.Uint64(v[0:8])
				lastSample = binary.LittleEndian.Uint64(v[8:16])
				reads.Add(1)
			}
			fmt.Printf("consumer %d: %v was the last tag (sensor %d, sample %d)\n",
				id, last, lastSensor, lastSample)
		}(c)
	}

	// Sensors: each an independent writer with its own cadence.
	for s := 0; s < sensors; s++ {
		w, err := reg.NewWriter()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(sensor int, w arcreg.MNWriter) {
			defer wg.Done()
			defer w.Close()
			buf := make([]byte, readingSize)
			for i := uint64(1); i <= readings; i++ {
				binary.LittleEndian.PutUint64(buf[0:8], uint64(sensor))
				binary.LittleEndian.PutUint64(buf[8:16], i)
				binary.LittleEndian.PutUint64(buf[16:24], i*uint64(sensor+1))
				if err := w.Write(buf); err != nil {
					log.Fatalf("sensor %d: %v", sensor, err)
				}
				published.Add(1)
				if i%256 == 0 {
					time.Sleep(time.Millisecond) // uneven cadences
				}
			}
		}(s, w)
	}

	// Wait for the sensors (the first `sensors` waitgroup members finish
	// on their own), then stop the consumers.
	for published.Load() < sensors*readings {
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	fmt.Printf("%d sensors published %d readings; consumers made %d totally-ordered reads\n",
		sensors, published.Load(), reads.Load())
}
