// Web dashboard: the register map served over HTTP end to end. A fleet
// of services publishes health statuses into an arcreg.Map through the
// HTTP serving layer's per-shard writer queues; dashboard clients read
// them back over plain GETs (each request a wait-free register read
// behind a syscall) and tail the whole map live over the SSE
// snapshot-delta stream — the same Watch engine in-process watchers
// use, with latest-value conflation as the slow-browser story.
//
// The demo runs a real loopback HTTP server, drives it with real
// clients, and ends with the server's own /statz tree: request counts,
// the reader pool's fold-ins (read_rmw stays 0 — GETs never contend),
// and the watcher ledgers.
//
//	go run ./examples/webdash
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"arcreg"
)

// Status is one service's health record — a multi-word value the
// register publishes atomically: no dashboard ever sees the load of one
// heartbeat with the timestamp of another.
type Status struct {
	Service string    `json:"service"`
	Healthy bool      `json:"healthy"`
	Load    float64   `json:"load"`
	Beat    int       `json:"beat"`
	Updated time.Time `json:"updated"`
}

func main() {
	store, err := arcreg.NewMap[Status](
		arcreg.WithShards(4),
		arcreg.WithReaders(16),
		arcreg.WithMaxValueSize(512),
	)
	if err != nil {
		log.Fatal(err)
	}
	// The HTTP handler owns the map's write side: every publication —
	// HTTP PUT or in-process Set — funnels through its per-shard writer
	// queues, preserving the one-writer-per-shard contract.
	// Pool handles and watch streams are counted against the map's
	// reader budget (16 above): 8 pooled GET readers, 4 streams.
	h, err := arcreg.NewHTTPHandler(store.Map(), arcreg.HTTPOptions{
		Readers:      8,
		WatchStreams: 4,
		ExpvarName:   "webdash",
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: h, ConnState: h.ConnState}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("dashboard backend on %s\n\n", base)

	// The dashboard tail: one SSE stream over the whole map. The first
	// event is a linearizable snapshot, every later one a delta — the
	// browser reconstructs exact map states by applying them in order.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tailDone := make(chan struct{})
	go tail(ctx, base, tailDone)

	// The service fleet: heartbeats through the serving layer. Encoding
	// runs on the producer (JSON via the store's codec), publication is
	// one bounded queue hop onto the shard writer.
	services := []string{"api", "auth", "billing", "search", "ingest"}
	for beat := 1; beat <= 3; beat++ {
		for i, svc := range services {
			st := Status{
				Service: svc,
				Healthy: !(svc == "billing" && beat == 2), // one flapping service
				Load:    0.2*float64(i) + 0.1*float64(beat),
				Beat:    beat,
				Updated: time.Now().UTC(),
			}
			blob, err := store.Codec().Encode(st)
			if err != nil {
				log.Fatal(err)
			}
			if err := h.Set(svc, blob); err != nil {
				log.Fatal(err)
			}
		}
		time.Sleep(50 * time.Millisecond) // distinct dashboard frames
	}

	// A dashboard widget's point reads: GET /k/{key}, each a wait-free
	// register read behind a syscall, decoded client-side. Each pooled
	// reader handle pays one-time setup on its first read of the key;
	// every repeat is the two-atomic-load fast path, so past one warm
	// lap of the pool the RMW counter stops moving.
	var billing Status
	for i := 0; i < 32; i++ {
		resp, err := http.Get(base + "/k/billing")
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&billing); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	fmt.Printf("point read: billing healthy=%v load=%.2f beat=%d\n\n", billing.Healthy, billing.Load, billing.Beat)

	time.Sleep(100 * time.Millisecond) // let the tail drain the last delta
	cancel()
	<-tailDone

	// The server observes itself: the serve node of /statz. Compare
	// read_rmw against read_ops: past each pooled handle's one-time
	// setup, the dashboard GETs added zero RMW and rode the fast path —
	// register reads that contended with nothing.
	fmt.Println("server /statz (serve node):")
	sn := h.Stats()
	for _, name := range []string{"req_get", "req_put", "get_hits", "read_ops", "read_fastpath", "read_rmw", "watch_events", "writes_applied"} {
		if v, ok := sn.Get(name); ok {
			fmt.Printf("  %-14s %d\n", name, v)
		}
	}

	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	hs.Shutdown(sctx)
	h.Close()
}

// tail follows GET /watch — the SSE snapshot-delta stream — and prints
// each frame the way a dashboard would apply it.
func tail(ctx context.Context, base string, done chan<- struct{}) {
	defer close(done)
	req, _ := http.NewRequestWithContext(ctx, "GET", base+"/watch", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	for {
		name, data, err := readEvent(br)
		if err != nil {
			return // stream canceled
		}
		// Delta values are raw register bytes (base64 in the JSON
		// framing); here each one is a codec-encoded Status.
		var d struct {
			Values  map[string][]byte `json:"values"`
			Deleted []string          `json:"deleted"`
			Full    bool              `json:"full"`
		}
		if err := json.Unmarshal([]byte(data), &d); err != nil {
			log.Fatal(err)
		}
		var svcs []string
		for k, raw := range d.Values {
			var st Status
			if err := json.Unmarshal(raw, &st); err != nil {
				log.Fatal(err)
			}
			svcs = append(svcs, fmt.Sprintf("%s(beat %d, healthy %v)", k, st.Beat, st.Healthy))
		}
		fmt.Printf("tail %-8s %d keys: %s\n", name, len(d.Values), strings.Join(svcs, " "))
	}
}

// readEvent parses one SSE frame into its event name and joined data.
func readEvent(br *bufio.Reader) (name, data string, err error) {
	var lines []string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", "", err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if name == "" && len(lines) == 0 {
				continue
			}
			return name, strings.Join(lines, "\n"), nil
		case strings.HasPrefix(line, "event: "):
			name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			lines = append(lines, line[len("data: "):])
		}
	}
}
