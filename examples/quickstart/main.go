// Quickstart: the smallest complete use of the ARC register — one writer
// goroutine publishing snapshots, several reader goroutines consuming them
// wait-free, with both the copying and the zero-copy read paths.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arcreg"
)

func main() {
	// A register for up to 4 concurrent readers and values up to 1KB.
	reg, err := arcreg.NewARC(arcreg.Config{
		MaxReaders:   4,
		MaxValueSize: 1024,
		Initial:      []byte("hello, registers"),
	})
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		totalOps atomic.Uint64
	)

	// Readers: each goroutine owns one handle. Reads never block, never
	// retry, and never fail — that is what wait-free means.
	for i := 0; i < 4; i++ {
		rd, err := reg.NewReader()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer rd.Close()
			buf := make([]byte, 1024)
			var ops uint64
			var lastSeen string
			for !stop.Load() {
				// Copying read:
				n, err := rd.Read(buf)
				if err != nil {
					log.Fatalf("reader %d: %v", id, err)
				}
				lastSeen = string(buf[:n])

				// Zero-copy view: valid until this handle's next
				// operation; no bytes move.
				if v, ok := arcreg.View(rd); ok {
					_ = v[0]
				}
				ops += 2
			}
			totalOps.Add(ops)
			fmt.Printf("reader %d: %8d ops, last value %q\n", id, ops, lastSeen)
		}(i)
	}

	// The single writer: publish 1000 values, 1ms apart.
	w := reg.Writer()
	for i := 1; i <= 1000; i++ {
		msg := fmt.Sprintf("snapshot #%d at %s", i, time.Now().Format("15:04:05.000"))
		if err := w.Write([]byte(msg)); err != nil {
			log.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	stop.Store(true)
	wg.Wait()
	fmt.Printf("writer: 1000 snapshots published; readers performed %d wait-free ops\n",
		totalOps.Load())
}
