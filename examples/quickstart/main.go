// Quickstart: the smallest complete use of the register facade — one
// writer goroutine publishing typed snapshots through arcreg.New, several
// reader goroutines consuming them wait-free, with the decoding and the
// freshness-probe read paths.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arcreg"
)

// Snapshot is what the writer shares: any JSON-encodable type works with
// New's default codec (see arcreg.WithCodec for the alternatives).
type Snapshot struct {
	Seq  int    `json:"seq"`
	At   string `json:"at"`
	Note string `json:"note"`
}

func main() {
	// An ARC register for up to 4 concurrent readers and encoded values
	// up to 1KB, seeded so reads before the first Set decode cleanly.
	reg, err := arcreg.New[Snapshot](
		arcreg.WithReaders(4),
		arcreg.WithMaxValueSize(1024),
		arcreg.WithInitial(Snapshot{Note: "hello, registers"}),
	)
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		totalOps atomic.Uint64
	)

	// Readers: each goroutine owns one handle. Reads never block, never
	// retry, and never fail — that is what wait-free means.
	for i := 0; i < 4; i++ {
		rd, err := reg.NewReader()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer rd.Close()
			var ops uint64
			var last Snapshot
			for !stop.Load() {
				// Freshness probe: one atomic load, no RMW. Skip the
				// decode entirely when nothing changed.
				if !rd.Fresh() {
					v, err := rd.Get() // decoded straight from the slot
					if err != nil {
						log.Fatalf("reader %d: %v", id, err)
					}
					last = v
				}
				ops++
			}
			totalOps.Add(ops)
			fmt.Printf("reader %d: %8d ops, last value #%d %q\n", id, ops, last.Seq, last.Note)
		}(i)
	}

	// The single writer: publish 1000 snapshots, 1ms apart.
	for i := 1; i <= 1000; i++ {
		s := Snapshot{Seq: i, At: time.Now().Format("15:04:05.000"), Note: "steady"}
		if err := reg.Set(s); err != nil {
			log.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	stop.Store(true)
	wg.Wait()
	fmt.Printf("writer: 1000 snapshots published; readers performed %d wait-free ops\n",
		totalOps.Load())
}
