// Market-data fan-out: a feed handler maintains an order book and
// publishes each revision through an ARC register; pricing/risk consumers
// read the freshest book wait-free at their own pace. This is the
// high-rate, many-consumer regime where the paper's numbers matter: the
// writer must never wait for a slow consumer (no lock), a consumer must
// never see a half-updated book (atomicity), and fast consumers re-reading
// an unchanged book pay zero RMW instructions (the ARC fast path).
//
//	go run ./examples/marketdata
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arcreg"
)

const depth = 32 // price levels per side

// Book layout: 8B seq | 8B bestBid | 8B bestAsk | depth×16B bids | depth×16B asks
const bookSize = 24 + depth*16*2

type book struct {
	seq      uint64
	bids     [depth][2]uint64 // price, quantity — descending prices
	asks     [depth][2]uint64 // ascending prices
	scratch  []byte
	register arcreg.Writer
}

func (b *book) publish() error {
	buf := b.scratch
	binary.LittleEndian.PutUint64(buf[0:8], b.seq)
	binary.LittleEndian.PutUint64(buf[8:16], b.bids[0][0])
	binary.LittleEndian.PutUint64(buf[16:24], b.asks[0][0])
	off := 24
	for i := 0; i < depth; i++ {
		binary.LittleEndian.PutUint64(buf[off:], b.bids[i][0])
		binary.LittleEndian.PutUint64(buf[off+8:], b.bids[i][1])
		off += 16
	}
	for i := 0; i < depth; i++ {
		binary.LittleEndian.PutUint64(buf[off:], b.asks[i][0])
		binary.LittleEndian.PutUint64(buf[off+8:], b.asks[i][1])
		off += 16
	}
	return b.register.Write(buf)
}

func main() {
	reg, err := arcreg.NewARC(arcreg.Config{MaxReaders: 5, MaxValueSize: bookSize})
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		readsOK  atomic.Uint64
		crossed  atomic.Uint64
		maxStale atomic.Uint64
	)

	// Consumers: compute spread/mid from the freshest book; verify the
	// book is never crossed (bid ≥ ask would indicate a torn snapshot,
	// since the writer always publishes consistent books).
	for c := 0; c < 5; c++ {
		rd, err := reg.NewReader()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer rd.Close()
			var lastSeq uint64
			for !stop.Load() {
				v, ok := arcreg.View(rd)
				if !ok || len(v) < 24 {
					continue
				}
				seq := binary.LittleEndian.Uint64(v[0:8])
				if seq == 0 {
					continue // initial empty book
				}
				bid := binary.LittleEndian.Uint64(v[8:16])
				ask := binary.LittleEndian.Uint64(v[16:24])
				if bid >= ask {
					crossed.Add(1)
					log.Fatalf("consumer %d: crossed book at seq %d: bid %d ≥ ask %d",
						id, seq, bid, ask)
				}
				if seq < lastSeq {
					log.Fatalf("consumer %d: book went backwards: %d after %d", id, seq, lastSeq)
				}
				if lastSeq != 0 && seq > lastSeq {
					if gap := seq - lastSeq - 1; gap > maxStale.Load() {
						maxStale.Store(gap) // revisions we skipped: freshness, not loss
					}
				}
				lastSeq = seq
				readsOK.Add(1)
			}
		}(c)
	}

	// The feed handler: apply updates and publish every revision.
	b := &book{scratch: make([]byte, bookSize), register: reg.Writer()}
	const mid = 1_000_000
	for i := 0; i < depth; i++ {
		b.bids[i] = [2]uint64{mid - 1 - uint64(i), 100}
		b.asks[i] = [2]uint64{mid + 1 + uint64(i), 100}
	}
	start := time.Now()
	const revisions = 200_000
	rng := uint64(0x9E3779B97F4A7C15)
	for r := 1; r <= revisions; r++ {
		// A cheap deterministic "market event": perturb one level.
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		lvl := int(rng % depth)
		b.bids[lvl][1] = 1 + rng%1000
		b.asks[(lvl*7)%depth][1] = 1 + (rng>>10)%1000
		b.seq = uint64(r)
		if err := b.publish(); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	stop.Store(true)
	wg.Wait()
	fmt.Printf("feed handler: %d book revisions in %v (%.2f M revisions/s)\n",
		revisions, elapsed.Round(time.Millisecond),
		revisions/elapsed.Seconds()/1e6)
	fmt.Printf("consumers: %d consistent reads, 0 crossed books, max revision gap %d\n",
		readsOK.Load(), maxStale.Load())
}
