// Hot configuration reload: a config manager publishes JSON configuration
// through an ARC register while request-serving workers read it on every
// request — wait-free, so a reload never stalls a request and a slow
// request never stalls the reload. This is the "large-scale data sharing"
// scenario of the paper's title at application level: one writer, many
// readers, multi-word values.
//
//	go run ./examples/config
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arcreg"
)

// Config is the application configuration the workers consult per request.
type Config struct {
	Generation   int           `json:"generation"`
	RateLimit    int           `json:"rate_limit"`
	Timeout      time.Duration `json:"timeout"`
	FeatureFlags []string      `json:"feature_flags"`
}

func main() {
	initial, _ := json.Marshal(Config{Generation: 0, RateLimit: 100, Timeout: time.Second})
	reg, err := arcreg.NewARC(arcreg.Config{
		MaxReaders:   8,
		MaxValueSize: 4096,
		Initial:      initial,
	})
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		requests  atomic.Uint64
		staleness atomic.Uint64 // requests served with an old generation
		latestGen atomic.Int64
	)

	// Workers: parse the freshest config before serving each "request".
	for i := 0; i < 8; i++ {
		rd, err := reg.NewReader()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer rd.Close()
			buf := make([]byte, 4096)
			for !stop.Load() {
				n, err := rd.Read(buf)
				if err != nil {
					log.Fatalf("worker %d: %v", id, err)
				}
				var cfg Config
				if err := json.Unmarshal(buf[:n], &cfg); err != nil {
					log.Fatalf("worker %d: config corrupt: %v", id, err)
				}
				// "Serve" a request under cfg.
				requests.Add(1)
				if int64(cfg.Generation) < latestGen.Load() {
					staleness.Add(1) // read overlapped a reload: old value is legal
				}
			}
		}(i)
	}

	// The config manager: reload 50 times, 10ms apart.
	w := reg.Writer()
	for gen := 1; gen <= 50; gen++ {
		cfg := Config{
			Generation:   gen,
			RateLimit:    100 + gen,
			Timeout:      time.Second + time.Duration(gen)*time.Millisecond,
			FeatureFlags: []string{"wait-free-reads", fmt.Sprintf("gen-%d", gen)},
		}
		blob, _ := json.Marshal(cfg)
		if err := w.Write(blob); err != nil {
			log.Fatal(err)
		}
		latestGen.Store(int64(gen))
		time.Sleep(10 * time.Millisecond)
	}

	stop.Store(true)
	wg.Wait()
	fmt.Printf("served %d requests across 50 config reloads\n", requests.Load())
	fmt.Printf("%d requests overlapped a reload and used the previous generation (allowed by atomicity)\n",
		staleness.Load())
	fmt.Println("no request ever blocked on a reload; no reload ever waited for requests")
}
