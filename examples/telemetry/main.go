// Telemetry snapshots: a metrics collector aggregates counters from many
// producers and periodically publishes a consistent multi-word snapshot
// through an ARC register; scrapers (exporters, dashboards, health
// checks) read the freshest snapshot wait-free and never observe a
// half-updated one — the atomicity guarantee doing real work.
//
// The snapshot is deliberately multi-word (many counters serialized
// together): with plain shared memory, a scraper could see counter A from
// one aggregation round and counter B from the next. The register makes
// the whole snapshot one atomic unit.
//
// The register also observes ITSELF: arcreg.Observe exports its live
// Stats tree through expvar (the standard /debug/vars JSON), and the
// run ends with the same tree as a text dump — publication epoch,
// reader occupancy, watcher ledgers — recorded with zero RMW and zero
// allocations on the paths being observed (DESIGN.md §10).
//
//	go run ./examples/telemetry
package main

import (
	"encoding/binary"
	"expvar"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"arcreg"
)

const counters = 64 // one snapshot = 64 uint64 counters + a round header

// snapshotSize: 8-byte round + 8-byte sum + counters.
const snapshotSize = 16 + counters*8

func main() {
	reg, err := arcreg.NewARC(arcreg.Config{
		MaxReaders:   6,
		MaxValueSize: snapshotSize,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Self-observation: export the register's own live stats tree as an
	// expvar (an HTTP server would now serve it at /debug/vars). The
	// raw register exposes the tree through the StatsSource capability.
	src, ok := any(reg).(arcreg.StatsSource)
	if !ok {
		log.Fatal("ARC register must expose a stats tree")
	}
	arcreg.Observe("snapshot-register", src)

	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		scrapes atomic.Uint64
		live    [counters]atomic.Uint64 // the producers' live counters
	)

	// Producers: bump counters concurrently (they are NOT the register
	// writer — they feed the collector).
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for !stop.Load() {
				live[(p*17)%counters].Add(1)
				live[(p*31+7)%counters].Add(3)
			}
		}(p)
	}

	// Scrapers: read the freshest snapshot and check its invariant — the
	// embedded sum must equal the sum of the embedded counters. A torn
	// snapshot would fail this immediately.
	for s := 0; s < 6; s++ {
		rd, err := reg.NewReader()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer rd.Close()
			var lastRound uint64
			for !stop.Load() {
				v, ok := arcreg.View(rd) // zero-copy: scrape without moving bytes
				if !ok {
					log.Fatalf("scraper %d: view unavailable", id)
				}
				round := binary.LittleEndian.Uint64(v[0:8])
				claimed := binary.LittleEndian.Uint64(v[8:16])
				var sum uint64
				for i := 0; i < counters; i++ {
					sum += binary.LittleEndian.Uint64(v[16+i*8:])
				}
				if sum != claimed {
					log.Fatalf("scraper %d: TORN SNAPSHOT round %d: sum %d != claimed %d",
						id, round, sum, claimed)
				}
				if round < lastRound {
					log.Fatalf("scraper %d: snapshot went backwards: %d after %d",
						id, round, lastRound)
				}
				lastRound = round
				scrapes.Add(1)
			}
		}(s)
	}

	// The collector: the register's single writer. Every 2ms it freezes
	// the live counters into a consistent snapshot and publishes it.
	w := reg.Writer()
	buf := make([]byte, snapshotSize)
	const rounds = 500
	for round := uint64(1); round <= rounds; round++ {
		var sum uint64
		for i := 0; i < counters; i++ {
			c := live[i].Load()
			binary.LittleEndian.PutUint64(buf[16+i*8:], c)
			sum += c
		}
		binary.LittleEndian.PutUint64(buf[0:8], round)
		binary.LittleEndian.PutUint64(buf[8:16], sum)
		if err := w.Write(buf); err != nil {
			log.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	stop.Store(true)
	wg.Wait()
	fmt.Printf("collector published %d snapshots; scrapers performed %d consistent scrapes\n",
		rounds, scrapes.Load())
	fmt.Println("every scrape saw an internally consistent snapshot (sum invariant held)")

	// The register's own telemetry, two ways: the text dump of the live
	// Stats tree, and the same tree as expvar JSON — what a scraper
	// hitting /debug/vars would receive.
	sn := src.Stats()
	fmt.Println("\nregister stats tree:")
	sn.WriteText(os.Stdout)
	if epoch, ok := sn.Child("notify").Get("epoch"); !ok || epoch < rounds {
		log.Fatalf("notify epoch %d, want >= %d publications", epoch, rounds)
	}
	fmt.Printf("\nexpvar %q serves the same tree (%d bytes of JSON)\n",
		"snapshot-register", len(expvar.Get("snapshot-register").String()))
}
