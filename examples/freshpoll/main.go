// Freshness-gated polling: a worker loop that consults shared state
// before every task, using arcreg.Fresh to skip deserialization when
// nothing changed. The probe is one atomic load with no RMW instruction —
// the R1 comparison of ARC's fast path exposed as an API — so polling at
// per-task granularity costs essentially nothing.
//
// The example contrasts two worker pools processing the same task stream:
// one re-decodes the shared routing table on every task, one only when
// the freshness probe says it changed. Both see identical routing
// decisions; the gated pool does a tiny fraction of the decode work.
//
//	go run ./examples/freshpoll
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arcreg"
)

// routingTable is the shared state: versioned shard assignments.
type routingTable struct {
	Version int            `json:"version"`
	Shards  map[string]int `json:"shards"`
}

const workers = 4

func main() {
	initial, _ := json.Marshal(routingTable{Version: 0, Shards: map[string]int{"a": 0}})
	reg, err := arcreg.NewARC(arcreg.Config{
		MaxReaders:   2 * workers,
		MaxValueSize: 8192,
		Initial:      initial,
	})
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg           sync.WaitGroup
		stop         atomic.Bool
		naiveDecodes atomic.Uint64
		gatedDecodes atomic.Uint64
		naiveTasks   atomic.Uint64
		gatedTasks   atomic.Uint64
	)

	// Naive pool: decode the table on every task.
	for i := 0; i < workers; i++ {
		rd, err := reg.NewReader()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rd.Close()
			for !stop.Load() {
				v, _ := arcreg.View(rd)
				var table routingTable
				if err := json.Unmarshal(v, &table); err != nil {
					log.Fatal(err)
				}
				naiveDecodes.Add(1)
				naiveTasks.Add(1)
				_ = table.Shards["a"] // route the "task"
			}
		}()
	}

	// Gated pool: decode only when the register changed.
	for i := 0; i < workers; i++ {
		rd, err := reg.NewReader()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rd.Close()
			var table routingTable
			for !stop.Load() {
				if fresh, ok := arcreg.Fresh(rd); !ok || !fresh {
					v, _ := arcreg.View(rd)
					if err := json.Unmarshal(v, &table); err != nil {
						log.Fatal(err)
					}
					gatedDecodes.Add(1)
				}
				gatedTasks.Add(1)
				_ = table.Shards["a"]
			}
		}()
	}

	// The control plane: reshard every 5ms, 100 times.
	shards := map[string]int{"a": 0, "b": 1, "c": 2}
	for v := 1; v <= 100; v++ {
		shards["a"] = v % 7
		blob, _ := json.Marshal(routingTable{Version: v, Shards: shards})
		if err := reg.Writer().Write(blob); err != nil {
			log.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	fmt.Printf("naive pool: %d tasks, %d decodes (1 per task)\n",
		naiveTasks.Load(), naiveDecodes.Load())
	fmt.Printf("gated pool: %d tasks, %d decodes (%.4f%% of tasks)\n",
		gatedTasks.Load(), gatedDecodes.Load(),
		100*float64(gatedDecodes.Load())/float64(max(gatedTasks.Load(), 1)))
	fmt.Println("the freshness probe is one atomic load — no RMW, no copy, no decode")
}
