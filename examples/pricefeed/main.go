// Price feed over the watch subsystem: one writer publishes quotes at
// full speed while subscribers follow them through the context-aware
// Watch API — parked between changes, woken by the publication
// sequencer, never polling.
//
// The point demonstrated is the slow-consumer semantics: delivery is
// at-least-once with latest-value conflation. A subscriber that
// processes slowly simply observes fewer, newer quotes — it can never
// build a backlog, and it never blocks the writer, because the
// register has no queue: the writer publishes into a wait-free
// register and moves on (zero RMW, zero allocations on its publish
// path while nobody is parked), and each wakeup re-reads whatever is
// freshest. Compare a channel-based feed, where a slow consumer forces
// the producer to block, drop explicitly, or buffer without bound.
//
//	go run ./examples/pricefeed
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"arcreg"
)

// Quote is one instrument's current market.
type Quote struct {
	Symbol string  `json:"symbol"`
	Bid    float64 `json:"bid"`
	Ask    float64 `json:"ask"`
	Seq    int     `json:"seq"` // per-symbol publication number
}

const symbol = "EURUSD"

func main() {
	feed, err := arcreg.NewMap[Quote](arcreg.WithReaders(8), arcreg.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	if !feed.Caps().Watchable {
		log.Fatal("pricefeed: map is not watchable")
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()

	// subscriber follows one symbol; perTick simulates processing cost.
	type subStats struct {
		name     string
		received atomic.Int64
		lastSeq  atomic.Int64
	}
	var wg sync.WaitGroup
	subscribe := func(name string, perTick time.Duration) *subStats {
		st := &subStats{name: name}
		rd, err := feed.NewReader()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rd.Close()
			for q, err := range rd.Watch(ctx, symbol) {
				if err != nil {
					if errors.Is(err, arcreg.ErrKeyNotFound) {
						continue // not published yet (or deleted): keep waiting
					}
					return // ctx deadline: done
				}
				st.received.Add(1)
				st.lastSeq.Store(int64(q.Seq))
				if perTick > 0 {
					time.Sleep(perTick) // slow consumer: conflation kicks in
				}
			}
		}()
		return st
	}

	fast := subscribe("fast", 0)
	slow := subscribe("slow (2ms/quote)", 2*time.Millisecond)

	// Writer: publish as fast as the register accepts. It never waits
	// for any subscriber.
	published := 0
	start := time.Now()
	for ctx.Err() == nil {
		published++
		q := Quote{Symbol: symbol, Seq: published,
			Bid: 1.08 + float64(published%100)/1e4,
			Ask: 1.0805 + float64(published%100)/1e4}
		if err := feed.Set(symbol, q); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	wg.Wait()

	fmt.Printf("writer: %d quotes in %v (%.0f quotes/ms) — never blocked by subscribers\n",
		published, elapsed.Round(time.Millisecond), float64(published)/float64(elapsed.Milliseconds()))
	for _, st := range []*subStats{fast, slow} {
		fmt.Printf("%-18s received %6d quotes (conflated %6d away), last seq %d/%d\n",
			st.name, st.received.Load(), int64(published)-st.received.Load(),
			st.lastSeq.Load(), published)
	}
	fmt.Println("both subscribers track the freshest quote; the slow one just saw fewer intermediates")
}
