package arcreg

// The HTTP serving facade: Map over the wire, preserving the register's
// contracts at the network edge. GETs ride pooled wait-free readers
// (zero RMW, zero allocation for an unchanged value), writes are
// serialized per shard through bounded single-writer queues (overload
// answers 503 + Retry-After; the queue never grows unboundedly), and
// watch streams ride the notification layer with latest-value
// conflation as the backpressure story — a slow client sees fewer,
// newer values and costs the server O(1) memory. DESIGN.md §11 gives
// the design; internal/serve implements it; cmd/arcserve is the
// standalone binary.

import (
	"net"
	"net/http"
	"time"

	"arcreg/internal/serve"
)

// HTTPOptions tunes an HTTP handler over a Map. The zero value is
// usable: 8 pooled readers, 64 watch streams, 128-deep write queues,
// 1s Retry-After, 30s long-poll cap, no expvar registration.
type HTTPOptions struct {
	// Readers is the pooled GET reader-handle count (default 8). Pool
	// handles plus watch streams must fit the Map's MaxReaders budget.
	Readers int
	// WatchStreams caps concurrent watch streams (default 64); beyond
	// it, watch requests shed with 503 + Retry-After.
	WatchStreams int
	// QueueDepth bounds each shard's write queue (default 128); beyond
	// it, writes shed with 503 + Retry-After.
	QueueDepth int
	// RetryAfter is the hint attached to every shed (default 1s).
	RetryAfter time.Duration
	// LongPollTimeout caps ?poll= waits (default 30s).
	LongPollTimeout time.Duration
	// ExpvarName, when set, publishes the handler's stats tree under
	// this expvar name (GET /debug/vars).
	ExpvarName string
}

// HTTPHandler serves a Map over HTTP:
//
//	GET    /k/{key}        value bytes (404 absent, 503+Retry-After degraded)
//	PUT    /k/{key}        store body (204; 503 queue full, 413 too large)
//	DELETE /k/{key}        delete (204; 404 absent)
//	GET    /watch/{key}    SSE value stream (?b64=1 base64; ?poll=5s long-poll)
//	GET    /watch          SSE whole-map snapshot-delta stream
//	GET    /keys           live key listing (JSON)
//	POST   /compact        compact every shard through the writer queues
//	GET    /statz          stats tree (text; ?format=json)
//
// The handler owns write access to the Map: route all writes through
// its Set/Delete/Compact (or HTTP), which serialize onto per-shard
// writer goroutines — calling Map.Set directly beside a live handler
// would put two writers on one shard. Readers are unaffected: the Map's
// own MapReader handles stay valid alongside the handler's pool.
type HTTPHandler struct {
	s *serve.Server
}

// NewHTTPHandler builds the serving layer over m: a reader pool, one
// writer goroutine per shard, and the route table above. Close releases
// them. The handler's pooled readers and watch streams are counted
// against m's MaxReaders; NewHTTPHandler fails if they do not fit.
func NewHTTPHandler(m *Map, o HTTPOptions) (*HTTPHandler, error) {
	s, err := serve.New(serve.Config{
		Map:             m.m,
		Readers:         o.Readers,
		WatchStreams:    o.WatchStreams,
		QueueDepth:      o.QueueDepth,
		RetryAfter:      o.RetryAfter,
		LongPollTimeout: o.LongPollTimeout,
		ExpvarName:      o.ExpvarName,
	})
	if err != nil {
		return nil, err
	}
	return &HTTPHandler{s: s}, nil
}

// ServeHTTP implements http.Handler.
func (h *HTTPHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.s.ServeHTTP(w, r) }

// ConnState is an optional http.Server.ConnState hook that feeds the
// handler's connection counters (conns_accepted, conns_active).
func (h *HTTPHandler) ConnState(c net.Conn, st http.ConnState) { h.s.ConnState(c, st) }

// Set publishes val under key through key's shard writer queue — the
// in-process counterpart of PUT /k/{key}, safe from any goroutine.
func (h *HTTPHandler) Set(key string, val []byte) error { return h.s.Set(key, val) }

// Delete removes key through its shard writer queue (see Map.Delete).
func (h *HTTPHandler) Delete(key string) error { return h.s.Delete(key) }

// Compact compacts every shard through the writer queues (see
// Map.Compact).
func (h *HTTPHandler) Compact() error { return h.s.Compact() }

// Stats returns the serving layer's own stats node — request and shed
// counters, reader-pool fold-ins (read_ops/read_fastpath/read_rmw),
// per-shard apply counts, and the live watcher ledger roll-up. The
// map's tree remains available via Map.Stats; /statz serves both.
func (h *HTTPHandler) Stats() Stats { return h.s.Stats() }

// StatsTree returns the combined observability root /statz and /metricz
// serve: the handler's node, the map's node, and a process node
// (uptime, Go version, GOMAXPROCS, build revision) as siblings.
func (h *HTTPHandler) StatsTree() Stats { return h.s.StatsTree() }

// DebugMux returns an admin-plane mux — net/http/pprof, /debug/vars
// (expvar), /debug/trace, /statz and /metricz — for serving on a
// separate listener so profiling and scraping never contend with the
// data plane (cmd/arcserve mounts it on -debug-addr). The data-plane
// handler also serves /statz, /metricz and /debug/trace itself; the
// pprof handlers are only here.
func (h *HTTPHandler) DebugMux() *http.ServeMux { return h.s.DebugMux() }

// Close stops the shard writers, severs every watch stream, and closes
// the pooled readers. Shut the surrounding http.Server down first so no
// handler is mid-request.
func (h *HTTPHandler) Close() error { return h.s.Close() }
